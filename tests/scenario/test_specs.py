"""Validation and serialization of the declarative spec layer."""

import json

import pytest

from repro.scenario import (
    BridgeSpec,
    ChannelSpec,
    FlowSpec,
    ImprovementsSpec,
    InterferenceSpec,
    PiconetSpec,
    PollerSpec,
    ScenarioSpec,
    ScoSpec,
    bridge_split_spec,
    figure4_spec,
    interfered_be_spec,
    multi_sco_spec,
)


def voice_flow(**overrides):
    base = dict(flow_id=1, slave=1, direction="UL", traffic_class="GS",
                interval_s=0.020, size=(144, 176))
    base.update(overrides)
    return FlowSpec(**base)


# ----------------------------------------------------------- construction

@pytest.mark.parametrize("factory", [
    lambda: figure4_spec(delay_requirement=0.04),
    lambda: figure4_spec(delay_requirement=None, gs_rate=9000.0),
    lambda: multi_sco_spec(),
    lambda: interfered_be_spec((1.0, 0.5), base_bit_error_rate=1e-4),
    lambda: bridge_split_spec(0.5, negotiated=True),
])
def test_factories_produce_json_round_trippable_specs(factory):
    spec = factory()
    as_json = json.dumps(spec.to_dict())
    assert ScenarioSpec.from_dict(json.loads(as_json)) == spec


def test_figure4_spec_matches_paper_layout():
    spec = figure4_spec(delay_requirement=0.04)
    piconet = spec.piconets[0]
    assert len(piconet.slaves) == 7
    assert [f.flow_id for f in piconet.flows] == list(range(1, 13))
    gs = [f for f in piconet.flows if f.gs_managed]
    assert [f.flow_id for f in gs] == [1, 2, 3, 4]
    assert all(f.delay_bound == 0.04 for f in gs)
    assert {f.direction for f in gs} == {"UL", "DL"}
    be = [f for f in piconet.flows if f.traffic_class == "BE"]
    assert len(be) == 8 and all(f.size == 176 for f in be)


def test_figure4_spec_zero_be_load_registers_sourceless_flows():
    spec = figure4_spec(delay_requirement=0.04, be_load_scale=0.0)
    be = [f for f in spec.piconets[0].flows if f.traffic_class == "BE"]
    assert be and all(f.interval_s is None and f.size is None for f in be)


@pytest.mark.parametrize("kwargs,message", [
    (dict(delay_requirement=None), "exactly one of"),
    (dict(delay_requirement=0.04, gs_rate=9000.0), "exactly one of"),
    (dict(delay_requirement=0.04, be_load_scale=-1), "cannot be negative"),
    (dict(delay_requirement=0.04, be_slaves=(4, 4)), "must not repeat"),
    (dict(delay_requirement=0.04, sco_slaves=(3,)), "must not carry"),
    (dict(delay_requirement=0.04, be_slaves=(9,)), "lie in 1..7"),
    (dict(delay_requirement=0.04, be_directions=()), "non-empty subset"),
])
def test_figure4_spec_rejects_bad_arguments(kwargs, message):
    with pytest.raises(ValueError, match=message):
        figure4_spec(**kwargs)


@pytest.mark.parametrize("mutation,message", [
    (dict(direction="sideways"), "direction"),
    (dict(traffic_class="XX"), "traffic_class"),
    (dict(slave=0), "slave AM address"),
    (dict(interval_s=-1.0), "interval_s must be positive"),
    (dict(size=0), "size"),
    (dict(size=(10, 5)), "min <= max"),
    (dict(interval_s=None), "size without interval_s"),
    (dict(delay_bound=0.03, rate=9000.0), "at most one"),
    (dict(delay_bound=-0.1), "delay_bound must be positive"),
    (dict(traffic_class="BE", delay_bound=0.03), "only GS flows"),
    (dict(stagger=True), "rng_stream"),
    (dict(allowed_types=()), "allowed_types may not be empty"),
])
def test_flow_spec_rejects_invalid_fields(mutation, message):
    with pytest.raises(ValueError, match=message):
        voice_flow(**mutation)


def test_flow_spec_size_bounds_and_gs_managed():
    ranged = voice_flow()
    assert ranged.size_bounds == (144, 176)
    assert not ranged.gs_managed
    fixed = voice_flow(size=150, delay_bound=0.025)
    assert fixed.size_bounds == (150, 150)
    assert fixed.gs_managed


@pytest.mark.parametrize("mutation,message", [
    (dict(slaves=()), "1..7 slaves"),
    (dict(name=""), "non-empty name"),
    (dict(allowed_types=()), "allowed_types may not be empty"),
    (dict(flows=(voice_flow(), voice_flow())), "unique"),
    (dict(flows=(voice_flow(slave=5),), slaves=("a", "b")),
     "addresses slave 5"),
    (dict(sco_links=(ScoSpec(slave=6),), slaves=("a",)),
     "SCO link addresses slave 6"),
    (dict(sco_links=(ScoSpec(slave=1, ul_flow_id=9),)), "unknown flow id 9"),
    (dict(flows=(voice_flow(slave=2),),
          sco_links=(ScoSpec(slave=1, ul_flow_id=1),), slaves=("a", "b")),
     "lives on slave 2"),
    (dict(sco_links=(ScoSpec(slave=1), ScoSpec(slave=1))),
     "at most one SCO link per slave"),
])
def test_piconet_spec_rejects_invalid_fields(mutation, message):
    base = dict(slaves=("voice",), flows=(voice_flow(),))
    base.update(mutation)
    with pytest.raises(ValueError, match=message):
        PiconetSpec(**base)


@pytest.mark.parametrize("mutation,message", [
    (dict(model="warp"), "unknown channel model"),
    (dict(ber=1.5), "within \\[0, 1\\]"),
    (dict(p_bg=0.0), "p_bg"),
    (dict(stationary_bad=1.0), "stationary_bad"),
    (dict(model="gilbert", slave_ber_scale=((1, 2.0),)),
     "only applies to the iid model"),
    (dict(model="iid", slave_ber_scale=((9, 1.0),)), "lie in 1..7"),
    (dict(model="iid", slave_ber_scale=((1, 1.0), (1, 2.0))),
     "must not repeat"),
    (dict(model="iid", slave_ber_scale=((1, -1.0),)), "negative"),
    (dict(stream=""), "substream"),
])
def test_channel_spec_rejects_invalid_fields(mutation, message):
    base = dict(model="iid", ber=1e-4)
    base.update(mutation)
    with pytest.raises(ValueError, match=message):
        ChannelSpec(**base)


@pytest.mark.parametrize("mutation,message", [
    (dict(kind="quantum"), "unknown poller kind"),
    (dict(only_slaves=(1,)), "only meaningful for the round_robin"),
    (dict(kind="round_robin", only_slaves=(0,)), "AM addresses in 1..7"),
])
def test_poller_spec_rejects_invalid_fields(mutation, message):
    with pytest.raises(ValueError, match=message):
        PollerSpec(**mutation)


def test_improvements_spec_rejects_non_bool():
    with pytest.raises(ValueError, match="must be a bool"):
        ImprovementsSpec(variable_interval=1)


@pytest.mark.parametrize("mutation,message", [
    (dict(interferer_duties=(1.5,)), "within \\[0, 1\\]"),
    (dict(ber_per_collision=0.0), "ber_per_collision"),
    (dict(victim=""), "victim"),
])
def test_interference_spec_rejects_invalid_fields(mutation, message):
    with pytest.raises(ValueError, match=message):
        InterferenceSpec(**mutation)


def test_bridge_spec_delegates_schedule_validation():
    with pytest.raises(ValueError, match="share_a must be within"):
        BridgeSpec(share_a=1.5)
    with pytest.raises(ValueError, match="two distinct piconets"):
        BridgeSpec(piconet_a="A", piconet_b="A")
    with pytest.raises(ValueError, match="period_slots"):
        BridgeSpec(period_slots=1)


def test_scenario_spec_cross_validation():
    piconet = PiconetSpec(name="A")
    with pytest.raises(ValueError, match="at least one piconet"):
        ScenarioSpec(piconets=())
    with pytest.raises(ValueError, match="unique"):
        ScenarioSpec(piconets=(piconet, PiconetSpec(name="A")))
    with pytest.raises(ValueError, match="unknown piconet 'B'"):
        ScenarioSpec(piconets=(piconet,),
                     bridges=(BridgeSpec(piconet_a="A", piconet_b="B"),))
    with pytest.raises(ValueError, match="single-piconet"):
        ScenarioSpec(piconets=(piconet, PiconetSpec(name="B")),
                     interference=InterferenceSpec())
    with pytest.raises(ValueError, match="has 1 slave"):
        ScenarioSpec(
            piconets=(piconet, PiconetSpec(name="B", slaves=("only",))),
            bridges=(BridgeSpec(piconet_a="A", piconet_b="B", slave_b=3),))


def test_interference_victim_must_name_the_piconet():
    with pytest.raises(ValueError, match="must name the scenario's piconet"):
        ScenarioSpec(piconets=(PiconetSpec(name="piconet"),),
                     interference=InterferenceSpec(victim="other"))
    spec = interfered_be_spec((1.0,))
    assert spec.interference.victim == spec.piconets[0].name == "victim"


def test_scenario_spec_piconet_lookup():
    spec = bridge_split_spec(0.5)
    assert spec.piconet("A").name == "A"
    with pytest.raises(KeyError, match="unknown piconet"):
        spec.piconet("C")


def test_from_dict_rejects_unknown_fields():
    with pytest.raises(ValueError, match="unknown ChannelSpec field"):
        ChannelSpec.from_dict({"model": "iid", "bogus": 1})
    with pytest.raises(ValueError, match="unknown ScenarioSpec field"):
        ScenarioSpec.from_dict({"piconets": [], "extra": True})


def test_sco_flow_ids_follow_flow_order():
    spec = figure4_spec(delay_requirement=0.046, be_slaves=(4, 5, 6),
                        sco_slaves=(7,), gs_uplink_only=True,
                        be_directions=("UL",))
    piconet = spec.piconets[0]
    assert piconet.sco_flow_ids == (8,)
    assert piconet.sco_links[0].ul_flow_id == 8


# ---------------------------------------------------------- AdmissionSpec

def test_admission_spec_round_trips_and_defaults_oblivious():
    from repro.scenario import AdmissionSpec

    spec = figure4_spec()
    assert spec.piconets[0].admission == AdmissionSpec()
    assert not spec.piconets[0].admission.aware
    aware = AdmissionSpec(mode="budget-aware", loss_margin=0.05,
                          residency_margin=0.02, estimator_alpha=0.1,
                          estimator_seed_loss=0.01)
    assert aware.aware
    rebuilt = AdmissionSpec.from_dict(
        json.loads(json.dumps(aware.to_dict())))
    assert rebuilt == aware


@pytest.mark.parametrize("mutation,message", [
    (dict(mode="psychic"), "admission mode"),
    (dict(loss_margin=1.0), "loss_margin"),
    (dict(loss_margin=-0.1), "loss_margin"),
    (dict(residency_margin=1.0), "residency_margin"),
    (dict(estimator_alpha=0.0), "estimator_alpha"),
    (dict(estimator_alpha=1.5), "estimator_alpha"),
    (dict(estimator_seed_loss=1.5), "estimator_seed_loss"),
])
def test_admission_spec_rejects_invalid_fields(mutation, message):
    from repro.scenario import AdmissionSpec

    with pytest.raises(ValueError, match=message):
        AdmissionSpec(**mutation)


def test_piconet_spec_round_trips_admission():
    from repro.scenario import AdmissionSpec

    piconet = figure4_spec().piconets[0]
    import dataclasses
    aware = dataclasses.replace(
        piconet, admission=AdmissionSpec(mode="budget-aware"))
    rebuilt = PiconetSpec.from_dict(json.loads(json.dumps(aware.to_dict())))
    assert rebuilt.admission.mode == "budget-aware"
    assert rebuilt == aware
