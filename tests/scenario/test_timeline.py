"""Tests of the timeline subsystem: spec validation and runtime events.

The spec side (``EventSpec`` / ``TimelineSpec`` and the cross-checks
``ScenarioSpec`` runs over them) is pinned first; then each event kind is
driven end to end through a compiled scenario — park/unpark with GS
withdraw/re-admission, mid-run flow add/remove, bridge roaming,
interferer switching, and renegotiate-on-violation including the
eviction path (a rejected renegotiation must fully detach the flow).
The fast-path interaction is covered by running the same timeline
scenario on the batch kernel and the reference event loop and comparing
the ledgers byte for byte.
"""

import json
from dataclasses import replace

import pytest

from repro.piconet.batch_kernel import NO_FAST_PATH_ENV
from repro.scenario import (
    EventSpec,
    ScenarioSpec,
    TimelineSpec,
    apply_overrides,
    bridge_split_spec,
    churn_recovery_spec,
    compile_scenario,
)
from repro.scenario.factories import figure4_spec


def _timeline_spec(*events) -> ScenarioSpec:
    return replace(figure4_spec(delay_requirement=0.040),
                   timeline=TimelineSpec(events=tuple(events)))


# -- EventSpec / TimelineSpec validation --------------------------------------

def test_unknown_event_kind_rejected():
    with pytest.raises(ValueError, match="unknown event kind"):
        EventSpec(at_s=0.1, kind="explode")


def test_event_missing_needed_fields_rejected():
    with pytest.raises(ValueError, match="needs"):
        EventSpec(at_s=0.1, kind="park")
    with pytest.raises(ValueError, match="needs"):
        EventSpec(at_s=0.1, kind="bridge-roam", bridge="b")  # no share_a


def test_event_with_unused_fields_rejected():
    with pytest.raises(ValueError, match="does not use"):
        EventSpec(at_s=0.1, kind="park", slave=1, interferer=2)


def test_timeline_must_be_ordered_by_time():
    with pytest.raises(ValueError, match="ordered by at_s"):
        TimelineSpec(events=(
            EventSpec(at_s=0.5, kind="park", slave=1),
            EventSpec(at_s=0.2, kind="unpark", slave=1)))


def test_scenario_rejects_parking_a_bridge_slave():
    spec = bridge_split_spec(bridge_share=0.5)
    with pytest.raises(ValueError, match="bridge slave"):
        replace(spec, timeline=TimelineSpec(events=(
            EventSpec(at_s=0.1, kind="park", piconet="A", slave=3),)))


def test_scenario_rejects_duplicate_flow_add():
    flow = figure4_spec(delay_requirement=0.04).piconets[0].flows[0]
    with pytest.raises(ValueError, match="re-uses flow id"):
        _timeline_spec(EventSpec(at_s=0.1, kind="flow-add", flow=flow))


def test_scenario_rejects_out_of_range_interferer():
    spec = churn_recovery_spec(interferers=2)
    with pytest.raises(ValueError, match="interferer 3"):
        replace(spec, timeline=TimelineSpec(events=(
            EventSpec(at_s=0.1, kind="interferer-on", interferer=3),)))


def test_scenario_rejects_interferer_event_without_field():
    with pytest.raises(ValueError, match="interference field"):
        _timeline_spec(EventSpec(at_s=0.1, kind="interferer-on",
                                 interferer=1))


def test_scenario_rejects_renegotiating_unknown_flow():
    with pytest.raises(ValueError, match="unknown flow id"):
        _timeline_spec(EventSpec(at_s=0.1, kind="flow-renegotiate",
                                 flow_id=99))


def test_flow_remove_then_readd_is_legal():
    flow = figure4_spec(delay_requirement=0.04).piconets[0].flows[0]
    spec = _timeline_spec(
        EventSpec(at_s=0.1, kind="flow-remove", flow_id=flow.flow_id),
        EventSpec(at_s=0.2, kind="flow-add", flow=flow))
    assert len(spec.timeline.events) == 2


def test_timeline_spec_round_trips_through_json():
    spec = churn_recovery_spec()
    wire = json.dumps(spec.to_dict(), sort_keys=True)
    assert ScenarioSpec.from_dict(json.loads(wire)) == spec


def test_timeline_fields_reachable_by_dotted_override():
    spec = churn_recovery_spec()
    mutated = apply_overrides(spec, {"timeline.events.8.tolerance": 0.04})
    assert mutated.timeline.events[8].tolerance == 0.04
    with pytest.raises(ValueError):
        apply_overrides(spec, {"timeline.events.8.nonsense": 1})


# -- runtime: event execution -------------------------------------------------

def test_empty_timeline_installs_nothing():
    compiled = compile_scenario(figure4_spec(delay_requirement=0.04), seed=1)
    compiled.run(0.1)
    assert compiled.timeline_log == []
    accounting = compiled.primary.piconet.slot_accounting()
    assert "topology_changes" not in accounting
    assert "parked_slaves" not in accounting


def test_park_withdraws_and_unpark_readmits_gs_flow():
    spec = _timeline_spec(
        EventSpec(at_s=0.2, kind="park", slave=1),
        EventSpec(at_s=0.4, kind="unpark", slave=1))
    compiled = compile_scenario(spec, seed=1)
    compiled.run(0.8)
    park, unpark = compiled.timeline_log
    assert park["kind"] == "park" and park["gs_withdrawn"] == [1]
    assert park["parked_flows"] == [1]
    assert unpark["kind"] == "unpark"
    assert unpark["gs_readmitted"] == {"1": True}
    # the flow is attached and admitted again, and kept delivering after
    piconet = compiled.primary.piconet
    assert piconet.parked_slaves() == []
    assert 1 in compiled.primary.manager.admitted_flow_ids()
    assert piconet.flow_state(1).delivered_packets > 0
    accounting = piconet.slot_accounting()
    assert accounting["topology_changes"] == 2
    assert "parked_slaves" not in accounting  # nobody parked at the end


def test_parked_slave_queues_but_is_not_polled():
    spec = _timeline_spec(EventSpec(at_s=0.1, kind="park", slave=4))
    compiled = compile_scenario(spec, seed=1)
    compiled.run(0.5)
    piconet = compiled.primary.piconet
    assert piconet.parked_slaves() == [4]
    # arrivals kept queueing into the parked states, none were delivered
    # after the park (BE slave 4 carries flows of both directions)
    parked = [state for state in piconet._parked_states.values()
              if state.spec.slave == 4]
    assert parked and any(state.queue.offered_packets > 0
                          for state in parked)
    assert piconet.slot_accounting()["parked_slaves"] == [4]


def test_flow_add_and_remove_mid_run():
    base = figure4_spec(delay_requirement=0.040)
    new_flow = replace(base.piconets[0].flows[4], flow_id=99,
                       rng_stream="be-99")
    spec = replace(base, timeline=TimelineSpec(events=(
        EventSpec(at_s=0.1, kind="flow-add", flow=new_flow),
        EventSpec(at_s=0.4, kind="flow-remove", flow_id=99))))
    compiled = compile_scenario(spec, seed=1)
    compiled.run(0.3)
    added = compiled.timeline_log[0]
    assert added["kind"] == "flow-add" and added["flow_id"] == 99
    assert 99 in compiled.primary.be_flow_ids
    state = compiled.primary.piconet.flow_state(99)
    assert state.queue.offered_packets > 0
    compiled.run(0.8)
    removed = compiled.timeline_log[1]
    assert removed["kind"] == "flow-remove"
    assert removed["gs_withdrawn"] is False
    assert 99 not in compiled.primary.piconet._states
    offered_at_removal = state.queue.offered_packets
    compiled.run(1.0)  # the stopped source must not offer anything more
    assert state.queue.offered_packets == offered_at_removal


def test_bridge_roam_rebalances_residency():
    spec = bridge_split_spec(bridge_share=0.9)
    spec = replace(spec, timeline=TimelineSpec(events=(
        EventSpec(at_s=0.3, kind="bridge-roam", bridge="bridge",
                  share_a=0.2),)))
    compiled = compile_scenario(spec, seed=1)
    compiled.run(0.8)
    roam, = compiled.timeline_log
    assert roam["kind"] == "bridge-roam" and roam["share_a"] == 0.2
    bridge = compiled.scatternet.bridge("bridge")
    assert bridge.schedule.share_a == 0.2
    # both masters re-registered the new presence pattern
    for role, (piconet_name, slave) in bridge.residences.items():
        piconet = compiled.piconet(piconet_name).piconet
        assert piconet._bridge_presence[slave] is not None


def test_interferer_switches_gate_collision_losses():
    # all interferers off for the whole run: no collision losses at all
    quiet = churn_recovery_spec(burst_start_s=1.0, renegotiate_at_s=1.0)
    compiled = compile_scenario(quiet, seed=1)
    compiled.run(0.5)
    assert compiled.interference_failures() == 0

    # burst at 0.1s: losses appear once the interferers switch on
    noisy = churn_recovery_spec(burst_start_s=0.1, renegotiate_at_s=1.0)
    compiled = compile_scenario(noisy, seed=1)
    compiled.run(0.5)
    assert compiled.interference_failures() > 0


def test_renegotiation_recovers_the_flagged_flow():
    compiled = compile_scenario(churn_recovery_spec(), seed=0)
    compiled.run(1.0)
    record = next(r for r in compiled.timeline_log
                  if r["kind"] == "flow-renegotiate")
    assert record["outcome"] == "renegotiated"
    assert record["measured_loss"] > 0.02
    manager = compiled.primary.manager
    assert 1 in manager.admitted_flow_ids()
    # the renewed reservation carries the raised (non-zero) loss budget
    budget = manager.setup(1).request.budget
    assert budget is not None and budget.loss_probability > 0.0


def test_rejected_renegotiation_evicts_the_flow_completely():
    """Satellite regression: an evicted flow gets zero further GS service."""
    compiled = compile_scenario(churn_recovery_spec(), seed=0)
    manager = compiled.primary.manager
    piconet = compiled.primary.piconet
    compiled.run(0.4)  # past the burst: real loss is being observed
    # drive the measured loss of flow 1's link to a level no admission
    # test can cover, so the timeline's renegotiation at 0.5s must reject
    for _ in range(400):
        manager.observe_link(1, "UL", error=True)
    compiled.run(0.7)
    record = next(r for r in compiled.timeline_log
                  if r["kind"] == "flow-renegotiate")
    assert record["outcome"] == "evicted"
    assert "reason" in record
    assert 1 not in manager.admitted_flow_ids()
    assert manager.stream_for(1) is None
    assert 1 not in piconet._states  # state and segments fully detached
    state = compiled.primary.piconet._parked_states.get(1)
    assert state is None
    delivered = compiled.primary.gs_delay_summary()[1]["packets"]
    compiled.run(1.2)  # half a second more: not a single further delivery
    assert compiled.primary.gs_delay_summary()[1]["packets"] == delivered


# -- runtime: fast-path byte-identity -----------------------------------------

def _ledger(compiled):
    primary = compiled.primary
    return (primary.piconet.slot_accounting(),
            primary.slave_throughputs_kbps(),
            primary.gs_delay_summary(),
            compiled.timeline_log)


def test_park_unpark_byte_identical_fast_vs_reference(monkeypatch):
    spec = _timeline_spec(
        EventSpec(at_s=0.2, kind="park", slave=1),
        EventSpec(at_s=0.4, kind="unpark", slave=1))

    monkeypatch.delenv(NO_FAST_PATH_ENV, raising=False)
    fast = compile_scenario(spec, seed=3)
    fast.run(0.8)
    assert fast.primary.piconet.fast_path_stats()["enabled"]

    monkeypatch.setenv(NO_FAST_PATH_ENV, "1")
    reference = compile_scenario(spec, seed=3)
    reference.run(0.8)
    assert not reference.primary.piconet.fast_path_stats()["enabled"]

    assert _ledger(fast) == _ledger(reference)


def test_timeline_events_bail_out_the_kernel():
    spec = _timeline_spec(
        EventSpec(at_s=0.2, kind="park", slave=4),
        EventSpec(at_s=0.4, kind="unpark", slave=4))
    compiled = compile_scenario(spec, seed=1)
    compiled.run(0.8)
    stats = compiled.primary.piconet.fast_path_stats()
    assert stats["enabled"]
    assert stats["bailouts"]["topology"] >= 2  # one per topology change
