"""Tests of segmentation policies and reassembly."""

import pytest

from repro.baseband import (
    BestFitSegmentationPolicy,
    LargestPacketSegmentationPolicy,
    Reassembler,
)
from repro.baseband.segmentation import SegmentationError


@pytest.fixture
def paper_policy():
    """The Section-4 policy: DH1 and DH3 allowed, best-fit on the remainder."""
    return BestFitSegmentationPolicy(["DH1", "DH3"])


def test_paper_packet_sizes_use_single_dh3(paper_policy):
    # every GS packet of 144..176 bytes fits in one DH3
    for size in (144, 160, 176):
        pieces = paper_policy.segment_sizes(size)
        assert len(pieces) == 1
        assert pieces[0][0].name == "DH3"
        assert pieces[0][1] == size


def test_small_remainder_goes_to_dh1(paper_policy):
    # 27 bytes fit in a DH1; the policy prefers the smaller packet
    pieces = paper_policy.segment_sizes(27)
    assert [(p.name, n) for p, n in pieces] == [("DH1", 27)]


def test_multi_segment_packet_splits_greedily(paper_policy):
    pieces = paper_policy.segment_sizes(183 + 20)
    assert [(p.name, n) for p, n in pieces] == [("DH3", 183), ("DH1", 20)]


def test_remainder_larger_than_dh1_uses_dh3(paper_policy):
    pieces = paper_policy.segment_sizes(183 + 100)
    assert [(p.name, n) for p, n in pieces] == [("DH3", 183), ("DH3", 100)]


def test_largest_policy_always_uses_dh3():
    policy = LargestPacketSegmentationPolicy(["DH1", "DH3"])
    pieces = policy.segment_sizes(20)
    assert pieces[0][0].name == "DH3"


def test_segment_sizes_conserve_bytes(paper_policy):
    for size in (1, 27, 28, 144, 183, 184, 400, 1500):
        pieces = paper_policy.segment_sizes(size)
        assert sum(n for _, n in pieces) == size


def test_zero_size_rejected(paper_policy):
    with pytest.raises(SegmentationError):
        paper_policy.segment_sizes(0)


def test_policy_needs_data_carrying_type():
    with pytest.raises(ValueError):
        BestFitSegmentationPolicy(["POLL"])


def test_segment_builds_packets_with_metadata(paper_policy):
    packets = paper_policy.segment(300, flow_id=7, hl_packet_id=99,
                                   arrival_time=123.0)
    assert len(packets) == 2
    assert packets[0].segment_index == 0 and not packets[0].is_last_segment
    assert packets[1].segment_index == 1 and packets[1].is_last_segment
    assert all(p.flow_id == 7 for p in packets)
    assert all(p.hl_packet_id == 99 for p in packets)
    assert all(p.hl_packet_size == 300 for p in packets)
    assert all(p.hl_arrival_time == 123.0 for p in packets)


def test_reassembler_round_trip(paper_policy):
    reassembler = Reassembler()
    packets = paper_policy.segment(500, flow_id=1, hl_packet_id=5,
                                   arrival_time=1.0)
    results = [reassembler.push(p) for p in packets]
    assert all(r is None for r in results[:-1])
    final = results[-1]
    assert final["size"] == 500
    assert final["flow_id"] == 1
    assert final["hl_packet_id"] == 5
    assert reassembler.pending == 0


def test_reassembler_interleaves_flows(paper_policy):
    reassembler = Reassembler()
    flow_a = paper_policy.segment(300, flow_id=1, hl_packet_id=1)
    flow_b = paper_policy.segment(300, flow_id=2, hl_packet_id=2)
    assert reassembler.push(flow_a[0]) is None
    assert reassembler.push(flow_b[0]) is None
    assert reassembler.push(flow_a[1])["flow_id"] == 1
    assert reassembler.push(flow_b[1])["flow_id"] == 2


def test_reassembler_detects_out_of_order(paper_policy):
    reassembler = Reassembler()
    packets = paper_policy.segment(400, flow_id=1, hl_packet_id=3)
    with pytest.raises(SegmentationError):
        reassembler.push(packets[1])


def test_max_segment_slots(paper_policy):
    assert paper_policy.max_segment_slots() == 3
    assert BestFitSegmentationPolicy(["DH1"]).max_segment_slots() == 1
    assert BestFitSegmentationPolicy(["DH5", "DH1"]).max_segment_slots() == 5


# ---------------------------------------------------- channel-adaptive policy

def _adaptive(**kwargs):
    from repro.baseband import ChannelAdaptiveSegmentationPolicy
    return ChannelAdaptiveSegmentationPolicy(**kwargs)


def test_link_quality_estimator_ewma():
    from repro.baseband import LinkQualityEstimator
    est = LinkQualityEstimator(alpha=0.5)
    assert est.loss_estimate == 0.0
    est.observe(True)
    assert est.loss_estimate == pytest.approx(0.5)
    est.observe(False)
    assert est.loss_estimate == pytest.approx(0.25)
    assert est.observations == 2
    with pytest.raises(ValueError):
        LinkQualityEstimator(alpha=0.0)
    with pytest.raises(ValueError):
        LinkQualityEstimator(initial_loss=1.5)


def test_adaptive_policy_starts_fast():
    policy = _adaptive()
    assert not policy.robust_active
    # 176 bytes fit a single DH3 in fast mode
    assert [(p.name, n) for p, n in policy.segment_sizes(176)] == \
        [("DH3", 176)]


def test_adaptive_policy_switches_to_fec_types_under_loss():
    policy = _adaptive(enter_robust=0.3, exit_robust=0.1, min_observations=1)
    for _ in range(50):
        policy.observe_transmission(error=True)
    assert policy.robust_active
    # the same packet now segments into DM types
    names = [p.name for p, _ in policy.segment_sizes(176)]
    assert names == ["DM3", "DM3"]


def test_adaptive_policy_hysteresis_and_recovery():
    policy = _adaptive(enter_robust=0.3, exit_robust=0.1, min_observations=1)
    for _ in range(50):
        policy.observe_transmission(error=True)
    assert policy.robust_active
    # a loss estimate between the thresholds keeps the current mode
    while policy.estimator.loss_estimate > 0.15:
        policy.observe_transmission(error=False)
    assert policy.robust_active
    # clean air eventually re-enables the fast types
    for _ in range(100):
        policy.observe_transmission(error=False)
    assert not policy.robust_active


def test_adaptive_policy_waits_for_min_observations():
    policy = _adaptive(enter_robust=0.1, min_observations=10)
    for _ in range(9):
        policy.observe_transmission(error=True)
    assert not policy.robust_active
    policy.observe_transmission(error=True)
    assert policy.robust_active


def test_adaptive_policy_worst_case_slots_covers_both_modes():
    policy = _adaptive(fast_types=("DH1",), robust_types=("DM1", "DM3"))
    assert policy.max_segment_slots() == 3


def test_adaptive_policy_validates_thresholds():
    with pytest.raises(ValueError):
        _adaptive(enter_robust=0.1, exit_robust=0.2)
    with pytest.raises(ValueError):
        _adaptive(min_observations=0)
