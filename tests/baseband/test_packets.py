"""Tests of the baseband packet catalogue."""

import pytest

from repro.baseband import (
    BasebandPacket,
    get_packet_type,
    max_transaction_slots,
    transaction_seconds,
)
from repro.baseband.packets import null_packet, poll_packet


def test_catalogue_payloads_match_specification():
    expected = {"DM1": 17, "DH1": 27, "DM3": 121, "DH3": 183,
                "DM5": 224, "DH5": 339, "HV3": 30, "POLL": 0, "NULL": 0}
    for name, payload in expected.items():
        assert get_packet_type(name).max_payload == payload


def test_catalogue_slot_counts():
    expected = {"DH1": 1, "DH3": 3, "DH5": 5, "DM3": 3, "POLL": 1, "HV3": 1}
    for name, slots in expected.items():
        assert get_packet_type(name).slots == slots


def test_packet_type_durations():
    dh3 = get_packet_type("DH3")
    assert dh3.duration_us == 3 * 625
    assert dh3.duration_seconds == pytest.approx(1.875e-3)


def test_unknown_packet_type_raises():
    with pytest.raises(KeyError):
        get_packet_type("DH7")


def test_lookup_is_case_insensitive():
    assert get_packet_type("dh3") is get_packet_type("DH3")


def test_baseband_packet_rejects_oversized_payload():
    with pytest.raises(ValueError):
        BasebandPacket(get_packet_type("DH1"), payload=28)


def test_baseband_packet_rejects_negative_payload():
    with pytest.raises(ValueError):
        BasebandPacket(get_packet_type("DH1"), payload=-1)


def test_poll_and_null_packets_carry_no_data():
    assert not poll_packet().carries_data
    assert not null_packet().carries_data
    assert poll_packet().slots == 1
    assert null_packet().slots == 1


def test_max_transaction_slots_dh3_both_ways():
    # the paper's M_t: DH3 down + DH3 up = 6 slots (3.75 ms)
    assert max_transaction_slots(["DH1", "DH3"]) == 6
    assert max_transaction_slots(["DH1"]) == 2
    assert max_transaction_slots(["DH5"]) == 10


def test_transaction_seconds():
    dh3 = get_packet_type("DH3")
    poll = get_packet_type("POLL")
    assert transaction_seconds(poll, dh3) == pytest.approx(4 * 625e-6)
    assert transaction_seconds(dh3, dh3) == pytest.approx(3.75e-3)


def test_packet_ids_are_unique():
    first = BasebandPacket(get_packet_type("DH1"), payload=10)
    second = BasebandPacket(get_packet_type("DH1"), payload=10)
    assert first.packet_id != second.packet_id
