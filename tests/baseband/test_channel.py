"""Tests of the radio channel models and the per-link channel map."""

import random

import pytest

from repro.baseband import (
    ChannelMap,
    GilbertElliottChannel,
    IdealChannel,
    LossyChannel,
    coerce_channel_map,
)
from repro.baseband.channel import TX_OK, TransmissionResult
from repro.baseband.constants import SLOT_US
from repro.baseband.packets import BasebandPacket, get_packet_type
from repro.sim.rng import RandomStreams


def _dh3(payload=100):
    return BasebandPacket(get_packet_type("DH3"), payload=payload)


# ------------------------------------------------------------------- result

def test_transmission_result_truthiness():
    assert bool(TX_OK)
    assert not TransmissionResult(received=False, payload_intact=False)
    nak = TransmissionResult(received=True, payload_intact=False)
    assert not nak and nak.received


# ----------------------------------------------------------------- channels

def test_ideal_channel_never_fails():
    channel = IdealChannel()
    assert all(channel.transmit(_dh3()).ok for _ in range(100))
    assert channel.packet_error_probability(_dh3()) == 0.0


def test_lossy_channel_requires_exactly_one_rate():
    with pytest.raises(ValueError):
        LossyChannel()
    with pytest.raises(ValueError):
        LossyChannel(packet_error_rate=0.1, bit_error_rate=1e-4)


def test_lossy_channel_rate_bounds_checked():
    with pytest.raises(ValueError):
        LossyChannel(packet_error_rate=1.5)
    with pytest.raises(ValueError):
        LossyChannel(bit_error_rate=-0.1)


def test_lossy_channel_loss_fraction_matches_rate():
    channel = LossyChannel(packet_error_rate=0.3, rng=random.Random(1))
    outcomes = [channel.transmit(_dh3()).ok for _ in range(5000)]
    loss = 1 - sum(outcomes) / len(outcomes)
    assert 0.25 < loss < 0.35


def test_packet_error_rate_mode_fails_as_crc_error():
    channel = LossyChannel(packet_error_rate=1.0)
    result = channel.transmit(_dh3())
    assert result.received and not result.payload_intact


def test_ber_longer_packets_more_likely_corrupted():
    channel = LossyChannel(bit_error_rate=1e-4)
    short = BasebandPacket(get_packet_type("DH1"), payload=10)
    long = BasebandPacket(get_packet_type("DH5"), payload=339)
    assert channel.packet_error_probability(long) > \
        channel.packet_error_probability(short)


def test_ber_fec_packets_more_robust():
    channel = LossyChannel(bit_error_rate=1e-4)
    dm3 = BasebandPacket(get_packet_type("DM3"), payload=100)
    dh3 = BasebandPacket(get_packet_type("DH3"), payload=100)
    assert channel.packet_error_probability(dm3) < \
        channel.packet_error_probability(dh3)


def test_ber_mode_separates_missed_from_crc_failures():
    # at a catastrophic BER the header (1/3 FEC) still fails far less often
    # than a long unprotected payload, so both outcome kinds appear
    channel = LossyChannel(bit_error_rate=0.02, rng=random.Random(4))
    results = [channel.transmit(_dh3()) for _ in range(3000)]
    missed = sum(1 for r in results if not r.received)
    crc = sum(1 for r in results if r.received and not r.payload_intact)
    assert missed > 0
    assert crc > 0
    assert crc > missed  # payload is the weakest section


# ----------------------------------------------------------- Gilbert-Elliott

def test_gilbert_elliott_parameter_validation():
    with pytest.raises(ValueError):
        GilbertElliottChannel(p_gb=1.5)
    with pytest.raises(ValueError):
        GilbertElliottChannel(per_good=0.1, ber_bad=1e-3)
    with pytest.raises(ValueError):
        GilbertElliottChannel(slot_us=0)


def test_gilbert_elliott_produces_burstier_errors_than_iid():
    rng = random.Random(3)
    channel = GilbertElliottChannel(p_gb=0.02, p_bg=0.2, per_good=0.0,
                                    per_bad=0.8, rng=rng)
    outcomes = [channel.transmit(_dh3()).ok for _ in range(20000)]
    losses = [not ok for ok in outcomes]
    loss_rate = sum(losses) / len(losses)
    assert 0.0 < loss_rate < 0.5
    # measure clustering: probability a loss follows a loss should exceed the
    # unconditional loss rate for a bursty channel
    follow = sum(1 for i in range(1, len(losses)) if losses[i] and losses[i - 1])
    conditional = follow / max(1, sum(losses[:-1]))
    assert conditional > loss_rate * 1.5


def test_gilbert_elliott_stationary_probability():
    channel = GilbertElliottChannel(p_gb=0.01, p_bg=0.09)
    assert channel.stationary_bad == pytest.approx(0.1)
    assert GilbertElliottChannel(p_gb=0.0, p_bg=0.0).stationary_bad == 0.0


def test_gilbert_elliott_state_advances_with_elapsed_slots():
    """Time-aware mode: recovery depends on elapsed time, not poll count."""
    recovered_after_long_gap = 0
    recovered_after_short_gap = 0
    trials = 400
    for seed in range(trials):
        for gap_slots, counter in ((1, "short"), (1000, "long")):
            channel = GilbertElliottChannel(
                p_gb=0.0, p_bg=0.05, per_good=0.0, per_bad=1.0,
                rng=random.Random(seed))
            channel.state_good = False
            channel.transmit(_dh3(), now_us=0)   # anchors the clock
            result = channel.transmit(_dh3(), now_us=gap_slots * SLOT_US)
            if result.ok:
                if counter == "long":
                    recovered_after_long_gap += 1
                else:
                    recovered_after_short_gap += 1
    # after 1000 slots the chain has almost surely relaxed back to good
    # (p_gb=0), after one slot it recovers with probability p_bg=0.05
    assert recovered_after_long_gap > trials * 0.99
    assert recovered_after_short_gap < trials * 0.15


def test_gilbert_elliott_closed_form_matches_stationary_loss():
    """Empirical slot-by-slot loss approaches the stationary mix."""
    channel = GilbertElliottChannel(p_gb=0.02, p_bg=0.08, per_good=0.0,
                                    per_bad=1.0, rng=random.Random(11))
    packet = _dh3()
    losses = 0
    n = 20000
    for slot in range(n):
        if not channel.transmit(packet, now_us=slot * SLOT_US).ok:
            losses += 1
    expected = channel.stationary_bad  # per_bad = 1, per_good = 0
    assert losses / n == pytest.approx(expected, rel=0.15)
    assert channel.stationary_error_rate(packet) == pytest.approx(expected)


def test_gilbert_elliott_ber_mode_uses_fec_model():
    channel = GilbertElliottChannel(p_gb=0.0, p_bg=0.0, ber_good=1e-4,
                                    ber_bad=1e-2)
    dm3 = BasebandPacket(get_packet_type("DM3"), payload=100)
    dh3 = BasebandPacket(get_packet_type("DH3"), payload=100)
    assert channel.packet_error_probability(dm3) < \
        channel.packet_error_probability(dh3)


# -------------------------------------------------------------- channel map

def test_channel_map_links_are_independent_and_deterministic():
    def build():
        return ChannelMap.uniform(
            lambda rng: LossyChannel(packet_error_rate=0.5, rng=rng),
            streams=RandomStreams(42))

    def sequence(cmap, slave, direction, n=200):
        return tuple(cmap.transmit(slave, direction, _dh3()).ok
                     for _ in range(n))

    first, second = build(), build()
    # same seed -> byte-identical per-link sequences across instances
    assert sequence(first, 1, "DL") == sequence(second, 1, "DL")
    assert sequence(first, 2, "UL") == sequence(second, 2, "UL")
    # different links evolve independently
    assert sequence(build(), 1, "DL") != sequence(build(), 1, "UL")
    assert sequence(build(), 1, "DL") != sequence(build(), 3, "DL")


def test_channel_map_memoizes_per_link_instances():
    cmap = ChannelMap.uniform(
        lambda rng: LossyChannel(packet_error_rate=0.1, rng=rng))
    a = cmap.channel_for(1, "DL")
    assert cmap.channel_for(1, "DL") is a
    assert cmap.channel_for(1, "UL") is not a
    assert cmap.links() == [(1, "DL"), (1, "UL")]


def test_channel_map_per_slave_heterogeneous_quality():
    cmap = ChannelMap.per_slave(
        {1: lambda rng: LossyChannel(packet_error_rate=1.0, rng=rng)},
        streams=RandomStreams(0))
    assert not cmap.transmit(1, "DL", _dh3()).ok
    # unlisted slaves default to ideal
    assert cmap.transmit(2, "DL", _dh3()).ok
    assert isinstance(cmap.channel_for(2, "UL"), IdealChannel)


def test_coerce_channel_map():
    assert isinstance(coerce_channel_map(None), ChannelMap)
    assert coerce_channel_map(None).transmit(1, "DL", _dh3()).ok

    shared = LossyChannel(packet_error_rate=0.0)
    cmap = coerce_channel_map(shared)
    assert cmap.channel_for(1, "DL") is shared
    assert cmap.channel_for(5, "UL") is shared

    existing = ChannelMap.ideal()
    assert coerce_channel_map(existing) is existing
    with pytest.raises(TypeError):
        coerce_channel_map(0.5)
