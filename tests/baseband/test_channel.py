"""Tests of the radio channel models."""

import random

import pytest

from repro.baseband import GilbertElliottChannel, IdealChannel, LossyChannel
from repro.baseband.packets import BasebandPacket, get_packet_type


def _dh3(payload=100):
    return BasebandPacket(get_packet_type("DH3"), payload=payload)


def test_ideal_channel_never_fails():
    channel = IdealChannel()
    assert all(channel.transmit(_dh3()) for _ in range(100))
    assert channel.packet_error_probability(_dh3()) == 0.0


def test_lossy_channel_requires_exactly_one_rate():
    with pytest.raises(ValueError):
        LossyChannel()
    with pytest.raises(ValueError):
        LossyChannel(packet_error_rate=0.1, bit_error_rate=1e-4)


def test_lossy_channel_rate_bounds_checked():
    with pytest.raises(ValueError):
        LossyChannel(packet_error_rate=1.5)
    with pytest.raises(ValueError):
        LossyChannel(bit_error_rate=-0.1)


def test_lossy_channel_loss_fraction_matches_rate():
    channel = LossyChannel(packet_error_rate=0.3, rng=random.Random(1))
    outcomes = [channel.transmit(_dh3()) for _ in range(5000)]
    loss = 1 - sum(outcomes) / len(outcomes)
    assert 0.25 < loss < 0.35


def test_ber_longer_packets_more_likely_corrupted():
    channel = LossyChannel(bit_error_rate=1e-4)
    short = BasebandPacket(get_packet_type("DH1"), payload=10)
    long = BasebandPacket(get_packet_type("DH5"), payload=339)
    assert channel.packet_error_probability(long) > \
        channel.packet_error_probability(short)


def test_ber_fec_packets_more_robust():
    channel = LossyChannel(bit_error_rate=1e-4)
    dm3 = BasebandPacket(get_packet_type("DM3"), payload=100)
    dh3 = BasebandPacket(get_packet_type("DH3"), payload=100)
    assert channel.packet_error_probability(dm3) < \
        channel.packet_error_probability(dh3)


def test_gilbert_elliott_parameter_validation():
    with pytest.raises(ValueError):
        GilbertElliottChannel(p_gb=1.5)


def test_gilbert_elliott_produces_burstier_errors_than_iid():
    rng = random.Random(3)
    channel = GilbertElliottChannel(p_gb=0.02, p_bg=0.2, per_good=0.0,
                                    per_bad=0.8, rng=rng)
    outcomes = [channel.transmit(_dh3()) for _ in range(20000)]
    losses = [not ok for ok in outcomes]
    loss_rate = sum(losses) / len(losses)
    assert 0.0 < loss_rate < 0.5
    # measure clustering: probability a loss follows a loss should exceed the
    # unconditional loss rate for a bursty channel
    follow = sum(1 for i in range(1, len(losses)) if losses[i] and losses[i - 1])
    conditional = follow / max(1, sum(losses[:-1]))
    assert conditional > loss_rate * 1.5
