"""Tests of the slot-timing constants and conversions."""

import pytest

from repro.baseband.constants import (
    SLOT_SECONDS,
    SLOT_US,
    SLOTS_PER_SECOND,
    seconds_to_us,
    slots_to_seconds,
    slots_to_us,
    us_to_seconds,
)


def test_slot_grid_matches_paper():
    # "each second is divided into 1600 time slots"
    assert SLOT_US == 625
    assert SLOTS_PER_SECOND == 1600
    assert SLOT_US * SLOTS_PER_SECOND == 1_000_000


def test_slot_conversions():
    assert slots_to_us(6) == 3750
    assert slots_to_seconds(6) == pytest.approx(3.75e-3)
    assert slots_to_seconds(1) == SLOT_SECONDS


def test_time_conversions_round_trip():
    assert us_to_seconds(seconds_to_us(0.02)) == pytest.approx(0.02)
    assert seconds_to_us(SLOT_SECONDS) == SLOT_US
