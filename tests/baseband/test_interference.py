"""Tests of the inter-piconet interference subsystem."""

import random

import pytest

from repro.baseband.channel import (
    ChannelMap,
    GilbertElliottChannel,
    IdealChannel,
    LossyChannel,
)
from repro.baseband.interference import (
    HOP_CHANNELS,
    HopSequence,
    InterfererProcess,
    InterferenceAwareChannel,
    InterferenceField,
    interference_channel_map,
)
from repro.baseband.packets import BasebandPacket, get_packet_type
from repro.sim.rng import RandomStreams


def dh3_packet(payload=183):
    return BasebandPacket(ptype=get_packet_type("DH3"), payload=payload)


def dh1_packet(payload=27):
    return BasebandPacket(ptype=get_packet_type("DH1"), payload=payload)


# ------------------------------------------------------------ hop sequence

def test_hop_sequence_is_random_access_deterministic():
    forward = HopSequence(random.Random(42))
    backward = HopSequence(random.Random(42))
    slots = list(range(200))
    expected = [forward.channel_at(s) for s in slots]
    # querying in reverse (and repeatedly) yields the same channels
    assert [backward.channel_at(s) for s in reversed(slots)] \
        == list(reversed(expected))
    assert [forward.channel_at(s) for s in slots] == expected
    assert all(0 <= c < HOP_CHANNELS for c in expected)
    with pytest.raises(ValueError):
        forward.channel_at(-1)


def test_hop_sequence_covers_the_band():
    hops = HopSequence(random.Random(1))
    seen = {hops.channel_at(s) for s in range(4000)}
    assert len(seen) == HOP_CHANNELS


# ------------------------------------------------------------- interferer

def test_interferer_duty_cycle_bounds_and_activity():
    rng = random.Random(3)
    silent = InterfererProcess("s", HopSequence(rng), random.Random(5),
                               duty_cycle=0.0)
    assert not any(silent.active_at(s) for s in range(100))
    saturated = InterfererProcess("x", HopSequence(rng), random.Random(5),
                                  duty_cycle=1.0)
    assert all(saturated.active_at(s) for s in range(100))
    with pytest.raises(ValueError):
        InterfererProcess("bad", HopSequence(rng), random.Random(1),
                          duty_cycle=1.5)


# ------------------------------------------------------------------ field

def test_field_collision_rate_matches_one_in_79():
    field = InterferenceField(streams=7)
    field.register("victim")
    field.register("other", duty_cycle=1.0)
    horizon = 40_000
    count = field.count_collisions("victim", horizon)
    rate = count / horizon
    assert abs(rate - 1.0 / HOP_CHANNELS) < 0.003
    assert field.expected_collision_probability("victim") == \
        pytest.approx(1.0 / HOP_CHANNELS)


def test_field_membership_errors():
    field = InterferenceField()
    field.register("a")
    with pytest.raises(ValueError, match="already registered"):
        field.register("a")
    with pytest.raises(KeyError, match="unknown piconet"):
        field.collisions("nope", 0)


def test_field_collision_ber_scales_with_colliders_and_caps():
    field = InterferenceField(streams=1, ber_per_collision=0.2)
    field.register("victim")
    for index in range(9):
        field.register(f"i{index}", duty_cycle=1.0)
    bers = {field.collision_ber("victim", slot) for slot in range(2000)}
    assert 0.0 in bers
    assert all(b in (0.0, 0.2, 0.4, 0.5) for b in bers)


def test_field_reproducible_for_a_given_stream_seed():
    sequences = []
    for _ in range(2):
        field = InterferenceField(streams=RandomStreams(9).child("intf"))
        field.register("victim")
        field.register("other", duty_cycle=0.5)
        sequences.append([field.collisions("victim", s) for s in range(500)])
    assert sequences[0] == sequences[1]


# ---------------------------------------------------- interference channel

def test_interference_channel_ideal_base_loses_only_on_collisions():
    field = InterferenceField(streams=11, ber_per_collision=0.5)
    field.register("victim")
    field.register("other", duty_cycle=1.0)
    channel = InterferenceAwareChannel(IdealChannel(), field, "victim",
                                       rng=random.Random(2))
    packet = dh1_packet()
    failures = sum(
        0 if channel.transmit(packet, now_us=slot * 625).ok else 1
        for slot in range(20_000))
    # DH1 spans one slot: failures can only happen in collision slots
    assert failures > 0
    assert failures <= field.count_collisions("victim", 20_000)
    assert channel.interference_failures == failures


def test_interference_channel_composes_with_base_losses():
    def build(base):
        field = InterferenceField(streams=13)
        field.register("victim")
        field.register("other", duty_cycle=1.0)
        return InterferenceAwareChannel(base, field, "victim",
                                        rng=random.Random(4))

    packet = dh3_packet()
    lossy = build(LossyChannel(bit_error_rate=1e-3,
                               rng=random.Random(9)))
    ideal = build(IdealChannel())
    trials = 4000
    lossy_fails = sum(
        0 if lossy.transmit(packet, now_us=s * 6 * 625).ok else 1
        for s in range(trials))
    ideal_fails = sum(
        0 if ideal.transmit(packet, now_us=s * 6 * 625).ok else 1
        for s in range(trials))
    # the base channel's losses stack on top of the interference losses
    assert lossy_fails > ideal_fails


def test_interference_sampling_independent_of_base_model():
    """Swapping the base model must not perturb the interference draws."""

    def interference_losses(base):
        field = InterferenceField(streams=21, ber_per_collision=0.5)
        field.register("victim")
        field.register("other", duty_cycle=1.0)
        channel = InterferenceAwareChannel(base, field, "victim",
                                           rng=random.Random(6))
        packet = dh1_packet()
        losses = []
        for slot in range(10_000):
            before = channel.interference_failures
            channel.transmit(packet, now_us=slot * 625)
            losses.append(channel.interference_failures - before)
        return losses

    ideal = interference_losses(IdealChannel())
    bursty = interference_losses(
        GilbertElliottChannel(p_gb=0.05, p_bg=0.1, per_good=0.0,
                              per_bad=0.2, rng=random.Random(8)))
    # interference_failures only counts base-survivors, so compare the
    # slots where interference struck at all: a base failure in the same
    # slot hides the interference loss from the counter but never moves it
    struck_ideal = [i for i, loss in enumerate(ideal) if loss]
    struck_bursty = [i for i, loss in enumerate(bursty) if loss]
    assert set(struck_bursty) <= set(struck_ideal)


def test_interference_channel_error_probabilities_include_expected_boost():
    field = InterferenceField(streams=5)
    field.register("victim")
    field.register("other", duty_cycle=1.0)
    channel = InterferenceAwareChannel(IdealChannel(), field, "victim")
    probabilities = channel.error_probabilities(dh3_packet())
    assert probabilities.any > 0.0
    # a second, silent neighbour adds nothing
    field.register("silent", duty_cycle=0.0)
    assert channel.error_probabilities(dh3_packet()).any == \
        pytest.approx(probabilities.any)


def test_interference_channel_requires_registered_victim():
    field = InterferenceField()
    with pytest.raises(KeyError, match="unknown piconet"):
        InterferenceAwareChannel(IdealChannel(), field, "ghost")


def test_interference_channel_map_wraps_every_link():
    field = InterferenceField(streams=3)
    field.register("victim")
    field.register("other")
    cmap = interference_channel_map(field, "victim",
                                    streams=RandomStreams(2).child("cm"))
    assert isinstance(cmap, ChannelMap)
    dl = cmap.channel_for(1, "DL")
    ul = cmap.channel_for(1, "UL")
    assert isinstance(dl, InterferenceAwareChannel)
    assert dl is not ul
    assert isinstance(dl.base, IdealChannel)
    lossy_map = interference_channel_map(
        field, "victim",
        base_factory=lambda link, rng: LossyChannel(bit_error_rate=1e-4,
                                                    rng=rng),
        streams=RandomStreams(2).child("cm"))
    assert isinstance(lossy_map.channel_for(2, "DL").base, LossyChannel)


# ----------------------------------------------- occupancy index / coupling

def test_hop_sequence_block_extension_matches_per_slot_draws():
    seeded = lambda: random.Random(99)  # noqa: E731
    one_at_a_time = HopSequence(seeded())
    per_slot = [one_at_a_time.channel_at(slot) for slot in range(500)]
    blocked = HopSequence(seeded())
    blocked.extend_to(500)
    assert blocked.channels_until(500) == per_slot
    # block extension is idempotent and never truncates
    blocked.extend_to(100)
    assert blocked.channels_until(500) == per_slot


def test_occupancy_index_survives_late_registration():
    def build(probe_early):
        field = InterferenceField(streams=21)
        field.register("victim")
        field.register("a", duty_cycle=0.8)
        if probe_early:  # force index + cache builds before "b" exists
            field.count_collisions("victim", 300)
        field.register("b", duty_cycle=0.6)
        return [field.collisions("victim", slot) for slot in range(300)]

    assert build(probe_early=True) == build(probe_early=False)


def test_count_collisions_zero_horizon_skips_membership_check():
    field = InterferenceField()
    assert field.count_collisions("nobody", 0) == 0
    with pytest.raises(KeyError, match="unknown piconet"):
        field.count_collisions("nobody", 1)


def test_coupled_member_is_silent_until_reported():
    field = InterferenceField(streams=11)
    field.register_coupled("p1")
    field.register_coupled("p2")
    assert field.count_collisions("p1", 1000) == 0
    field.report_transmission("p2", 0, 1000)
    assert field.count_collisions("p1", 1000) > 0
    # reporting is idempotent: repeating a span changes nothing
    before = field.count_collisions("p1", 1000)
    field.report_transmission("p2", 100, 200)
    assert field.count_collisions("p1", 1000) == before


def test_coupled_report_validation():
    field = InterferenceField(streams=11)
    field.register("duty", duty_cycle=1.0)
    field.register_coupled("coupled")
    with pytest.raises(TypeError, match="duty-cycle interferer"):
        field.report_transmission("duty", 0, 1)
    with pytest.raises(KeyError, match="unknown piconet"):
        field.report_transmission("ghost", 0, 1)
    with pytest.raises(ValueError, match="start_slot"):
        field.report_transmission("coupled", -1, 1)
    with pytest.raises(ValueError, match="slots"):
        field.report_transmission("coupled", 0, 0)


def test_late_report_invalidates_existing_victim_caches():
    field = InterferenceField(streams=13)
    field.register_coupled("p1")
    field.register_coupled("p2")
    # build victim caches over a horizon while p2 is still silent
    assert field.count_collisions("p1", 400) == 0
    # a report into the already-cached span must be reflected
    field.report_transmission("p2", 0, 400)
    fresh = InterferenceField(streams=13)
    fresh.register_coupled("p1")
    fresh.register_coupled("p2")
    fresh.report_transmission("p2", 0, 400)
    assert field.count_collisions("p1", 400) \
        == fresh.count_collisions("p1", 400) > 0


def test_recorder_reports_on_the_slot_grid():
    field = InterferenceField(streams=15)
    field.register_coupled("p1")
    field.register_coupled("p2")
    record = field.recorder("p2")
    record(4 * 625, 2)  # 4 slots in, 2 slots long
    peer = field.member("p2")
    assert [peer.active_at(slot) for slot in range(8)] \
        == [False] * 4 + [True, True] + [False] * 2
    with pytest.raises(KeyError, match="unknown piconet"):
        field.recorder("ghost")


def test_activity_and_observed_collision_fractions():
    field = InterferenceField(streams=17)
    field.register_coupled("p1")
    field.register_coupled("p2")
    field.report_transmission("p2", 0, 500)
    assert field.activity_fraction("p2", 1000) == pytest.approx(0.5)
    assert field.activity_fraction("p1", 1000) == 0.0
    observed = field.observed_collision_fraction("p1", 500)
    assert observed == pytest.approx(1.0 / HOP_CHANNELS, rel=0.8)
    assert field.observed_collision_fraction("p1", 0) == 0.0


# ------------------------------------------------- interferer on/off switches

def _switched_pair(seed=21):
    """Two identically seeded fields: one always-on, one to be switched."""
    fields = []
    for _ in range(2):
        field = InterferenceField(streams=seed)
        field.register("victim")
        field.register("other", duty_cycle=1.0)
        fields.append(field)
    return fields


def test_interferer_switch_masks_without_redrawing():
    always_on, switched = _switched_pair()
    baseline = [always_on.collisions("victim", s) for s in range(600)]
    switched.set_interferer_enabled("other", 200, False)
    switched.set_interferer_enabled("other", 400, True)
    masked = [switched.collisions("victim", s) for s in range(600)]
    # off-window silent; outside it the raw draws are untouched, so the
    # pattern is identical to the always-on field slot for slot
    assert masked[:200] == baseline[:200]
    assert masked[200:400] == [0] * 200
    assert masked[400:] == baseline[400:]


def test_interferer_switch_invalidates_prebuilt_caches():
    always_on, switched = _switched_pair()
    # build occupancy rows and victim caches past the switch point first
    assert switched.count_collisions("victim", 600) \
        == always_on.count_collisions("victim", 600)
    switched.set_interferer_enabled("other", 200, False)
    rebuilt = [switched.collisions("victim", s) for s in range(600)]
    assert rebuilt[200:] == [0] * 400
    assert rebuilt[:200] == [always_on.collisions("victim", s)
                             for s in range(200)]


def test_interferer_switches_must_not_move_backwards():
    _, field = _switched_pair()
    field.set_interferer_enabled("other", 300, False)
    with pytest.raises(ValueError, match="non-decreasing"):
        field.member("other").set_enabled(100, True)
    # an equal-slot switch replaces the breakpoint instead
    field.set_interferer_enabled("other", 300, True)
    assert field.member("other").enabled_at(300)


def test_interferer_switch_rejects_coupled_members():
    field = InterferenceField(streams=23)
    field.register_coupled("p1")
    with pytest.raises(TypeError, match="coupled"):
        field.set_interferer_enabled("p1", 0, False)
