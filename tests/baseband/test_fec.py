"""Tests of the FEC / packet error-probability model."""

import math

import pytest

from repro.baseband.fec import (
    CRC_BITS,
    HAMMING_BLOCK_BITS,
    access_code_error,
    hamming_block_error,
    header_error,
    packet_error_probabilities,
    payload_air_bits,
    payload_error,
    payload_header_bytes,
    repetition_bit_error,
)
from repro.baseband.packets import BasebandPacket, get_packet_type


def test_repetition_code_corrects_single_errors():
    # a decoded bit fails only on 2-of-3 or 3-of-3 corruption
    p = 0.1
    expected = 3 * p * p * (1 - p) + p ** 3
    assert repetition_bit_error(p) == pytest.approx(expected)
    # quadratic improvement at small p
    assert repetition_bit_error(1e-3) == pytest.approx(3e-6, rel=0.01)


def test_repetition_code_boundaries():
    assert repetition_bit_error(0.0) == 0.0
    assert repetition_bit_error(1.0) == pytest.approx(1.0)


def test_hamming_block_corrects_one_error():
    p = 0.01
    # block fails on >= 2 errors in 15 bits
    ok = (1 - p) ** 15 + 15 * p * (1 - p) ** 14
    assert hamming_block_error(p) == pytest.approx(1 - ok)
    assert hamming_block_error(0.0) == 0.0
    with pytest.raises(ValueError):
        hamming_block_error(0.01, block_bits=0)


def test_access_code_tolerates_threshold_errors():
    assert access_code_error(0.0) == 0.0
    # far below uncoded loss: at 1e-3, 64 uncoded bits fail with ~6%,
    # but the correlator needs 8+ errors
    assert access_code_error(1e-3) < 1e-12
    assert access_code_error(0.5) > 0.9


def test_header_is_repetition_protected():
    assert header_error(0.0) == 0.0
    assert header_error(1e-3) == pytest.approx(18 * 3e-6, rel=0.05)


def test_payload_header_bytes_by_type():
    assert payload_header_bytes(get_packet_type("DH1")) == 1
    assert payload_header_bytes(get_packet_type("DH3")) == 2
    assert payload_header_bytes(get_packet_type("DM5")) == 2
    assert payload_header_bytes(get_packet_type("HV3")) == 0
    assert payload_header_bytes(get_packet_type("POLL")) == 0


def test_fec_payload_beats_uncoded_at_low_ber():
    dm3 = get_packet_type("DM3")
    dh3 = get_packet_type("DH3")
    assert payload_error(dm3, 100, 1e-4) < payload_error(dh3, 100, 1e-4)


def test_uncoded_payload_error_is_exact():
    dh1 = get_packet_type("DH1")
    bits = (10 + 1) * 8 + CRC_BITS
    assert payload_error(dh1, 10, 1e-3) == pytest.approx(
        1 - (1 - 1e-3) ** bits)


def test_hv1_uses_repetition_code():
    hv1 = get_packet_type("HV1")
    bit_fail = repetition_bit_error(1e-3)
    assert payload_error(hv1, 10, 1e-3) == pytest.approx(
        1 - (1 - bit_fail) ** 80)


def test_payload_air_bits_expand_with_fec():
    dm1 = get_packet_type("DM1")
    dh1 = get_packet_type("DH1")
    # same user bytes cost ~1.5x the air bits under the (15, 10) code
    assert payload_air_bits(dm1, 10) == pytest.approx(
        payload_air_bits(dh1, 10) * 1.5, rel=0.05)
    # shortened last block keeps its 5 parity bits
    info = (10 + 1) * 8 + CRC_BITS
    full, rest = divmod(info, 10)
    expected = full * HAMMING_BLOCK_BITS + (rest + 5 if rest else 0)
    assert payload_air_bits(dm1, 10) == expected


def test_decomposition_combines_sections():
    packet = BasebandPacket(get_packet_type("DH3"), payload=100)
    probs = packet_error_probabilities(packet, 1e-3)
    assert 0 < probs.payload < 1
    assert probs.not_received == pytest.approx(
        1 - (1 - probs.access) * (1 - probs.header))
    assert probs.any == pytest.approx(
        1 - (1 - probs.access) * (1 - probs.header) * (1 - probs.payload))
    # payload dominates at moderate BER: header and access are protected
    assert probs.payload > 100 * probs.not_received


def test_decomposition_validates_ber():
    packet = BasebandPacket(get_packet_type("DH1"), payload=10)
    with pytest.raises(ValueError):
        packet_error_probabilities(packet, 1.5)


def test_dm_vs_dh_goodput_crossover_exists():
    """The pack's premise: DH wins at low BER, DM at high BER."""
    dm3 = BasebandPacket(get_packet_type("DM3"), payload=121)
    dh3 = BasebandPacket(get_packet_type("DH3"), payload=183)

    def goodput(packet, ber):
        return packet.payload * (1 - packet_error_probabilities(
            packet, ber).any)

    assert goodput(dh3, 3e-5) > goodput(dm3, 3e-5)
    assert goodput(dm3, 1e-3) > goodput(dh3, 1e-3)
