"""Tests of the memoized FEC tables and their observability hooks.

The slot-batch fast path leans on :mod:`repro.baseband.fec` computing each
packet-shape error decomposition exactly once per ``(type, payload, ber)``
key; ``cache_stats()`` / ``clear_caches()`` make that claim checkable.
"""

import pytest

from repro.baseband.fec import (
    cache_stats,
    clear_caches,
    packet_error_probabilities,
)
from repro.baseband.packets import BasebandPacket, get_packet_type


def _packet(name="DH3", payload=100):
    return BasebandPacket(ptype=get_packet_type(name), payload=payload,
                          flow_id=1)


def test_cache_stats_reports_every_memoized_function():
    stats = cache_stats()
    assert set(stats) == {
        "repetition_bit_error", "hamming_block_error", "access_code_error",
        "header_error", "payload_error", "packet_error_probabilities"}
    for counters in stats.values():
        assert set(counters) == {"hits", "misses", "size"}


def test_repeated_decomposition_hits_the_cache():
    clear_caches()
    first = packet_error_probabilities(_packet(), 1e-4)
    baseline = cache_stats()["packet_error_probabilities"]
    assert baseline["misses"] == 1 and baseline["size"] == 1

    second = packet_error_probabilities(_packet(), 1e-4)
    after = cache_stats()["packet_error_probabilities"]
    assert second == first
    assert after["hits"] == baseline["hits"] + 1
    assert after["misses"] == baseline["misses"]  # no recomputation
    assert after["size"] == 1


def test_distinct_shapes_and_bers_miss_separately():
    clear_caches()
    packet_error_probabilities(_packet("DH3", 100), 1e-4)
    packet_error_probabilities(_packet("DH3", 100), 2e-4)  # new ber
    packet_error_probabilities(_packet("DH1", 17), 1e-4)   # new shape
    packet_error_probabilities(_packet("DM3", 100), 1e-4)  # new type
    stats = cache_stats()["packet_error_probabilities"]
    assert stats["misses"] == 4
    assert stats["size"] == 4


def test_clear_caches_resets_all_counters():
    packet_error_probabilities(_packet(), 1e-4)
    clear_caches()
    for counters in cache_stats().values():
        assert counters == {"hits": 0, "misses": 0, "size": 0}


def test_validation_stays_in_front_of_the_cache():
    with pytest.raises(ValueError, match="bit error rate"):
        packet_error_probabilities(_packet(), 1.5)
    with pytest.raises(ValueError, match="bit error rate"):
        packet_error_probabilities(_packet(), -0.1)


def test_cached_values_match_direct_recomputation():
    clear_caches()
    cached = packet_error_probabilities(_packet("DM1", 17), 3e-4)
    clear_caches()
    fresh = packet_error_probabilities(_packet("DM1", 17), 3e-4)
    assert cached == fresh
    assert 0.0 < fresh.any < 1.0
