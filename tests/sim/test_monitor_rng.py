"""Tests of monitors, counters and seeded random streams."""

import math

import pytest

from repro.sim import Counter, Monitor, RandomStreams, TimeSeriesMonitor


def test_monitor_summary_statistics():
    monitor = Monitor("delays")
    monitor.extend([1.0, 2.0, 3.0, 4.0])
    assert monitor.count == 4
    assert monitor.mean == pytest.approx(2.5)
    assert monitor.minimum == 1.0
    assert monitor.maximum == 4.0
    assert monitor.percentile(50) == pytest.approx(2.5)
    assert monitor.percentile(0) == 1.0
    assert monitor.percentile(100) == 4.0


def test_monitor_empty_statistics_are_nan():
    monitor = Monitor()
    assert math.isnan(monitor.mean)
    assert math.isnan(monitor.maximum)
    assert math.isnan(monitor.percentile(50))


def test_monitor_percentile_bounds_checked():
    monitor = Monitor()
    monitor.record(1.0)
    with pytest.raises(ValueError):
        monitor.percentile(150)


def test_monitor_variance_and_stdev():
    monitor = Monitor()
    monitor.extend([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
    assert monitor.variance == pytest.approx(4.571428, rel=1e-5)
    assert monitor.stdev == pytest.approx(math.sqrt(4.571428), rel=1e-5)


def test_time_series_time_average_piecewise_constant():
    series = TimeSeriesMonitor("queue")
    series.record(0.0, 0.0)
    series.record(10.0, 5.0)
    series.record(20.0, 0.0)
    # value 0 for 10s, 5 for 10s, then 0 afterwards
    assert series.time_average(until=20.0) == pytest.approx(2.5)
    assert series.time_average(until=40.0) == pytest.approx(1.25)


def test_time_series_rejects_unordered_times():
    series = TimeSeriesMonitor()
    series.record(5.0, 1.0)
    with pytest.raises(ValueError):
        series.record(4.0, 1.0)


def test_counter_increments():
    counter = Counter("slots", "slots")
    counter.increment()
    counter.increment(4)
    assert int(counter) == 5
    counter.reset()
    assert int(counter) == 0


def test_random_streams_are_deterministic():
    a = RandomStreams(7).stream("source-1")
    b = RandomStreams(7).stream("source-1")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_random_streams_differ_by_name_and_seed():
    streams = RandomStreams(7)
    first = [streams.stream("a").random() for _ in range(5)]
    second = [streams.stream("b").random() for _ in range(5)]
    assert first != second
    other_seed = [RandomStreams(8).stream("a").random() for _ in range(5)]
    assert first != other_seed


def test_random_streams_independent_of_creation_order():
    forward = RandomStreams(3)
    backward = RandomStreams(3)
    forward.stream("x")
    value_forward = forward.stream("y").random()
    value_backward = backward.stream("y").random()
    assert value_forward == value_backward
