"""Tests of the discrete-event engine (environment, run/step semantics)."""

import pytest

from repro.sim import Environment, Event, Timeout
from repro.sim.engine import EmptySchedule


def test_clock_starts_at_initial_time():
    env = Environment(initial_time=42)
    assert env.now == 42


def test_timeout_advances_clock():
    env = Environment()
    log = []

    def proc(env):
        yield env.timeout(10)
        log.append(env.now)
        yield env.timeout(5)
        log.append(env.now)

    env.process(proc(env))
    env.run()
    assert log == [10, 15]


def test_run_until_time_stops_exactly():
    env = Environment()

    def proc(env):
        while True:
            yield env.timeout(7)

    env.process(proc(env))
    env.run(until=100)
    assert env.now == 100


def test_run_until_event_returns_value():
    env = Environment()

    def proc(env):
        yield env.timeout(3)
        return "done"

    result = env.run(until=env.process(proc(env)))
    assert result == "done"
    assert env.now == 3


def test_run_until_past_time_raises():
    env = Environment(initial_time=50)
    with pytest.raises(ValueError):
        env.run(until=10)


def test_step_on_empty_schedule_raises():
    env = Environment()
    with pytest.raises(EmptySchedule):
        env.step()


def test_events_processed_in_time_order():
    env = Environment()
    order = []

    def proc(env, delay, name):
        yield env.timeout(delay)
        order.append(name)

    env.process(proc(env, 30, "c"))
    env.process(proc(env, 10, "a"))
    env.process(proc(env, 20, "b"))
    env.run()
    assert order == ["a", "b", "c"]


def test_simultaneous_events_fifo_order():
    env = Environment()
    order = []

    def proc(env, name):
        yield env.timeout(5)
        order.append(name)

    for name in ("first", "second", "third"):
        env.process(proc(env, name))
    env.run()
    assert order == ["first", "second", "third"]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        Timeout(env, -1)


def test_peek_reports_next_event_time():
    env = Environment()
    assert env.peek() == float("inf")
    env.timeout(12)
    assert env.peek() == 12


def test_unhandled_process_exception_propagates():
    env = Environment()

    def broken(env):
        yield env.timeout(1)
        raise RuntimeError("boom")

    env.process(broken(env))
    with pytest.raises(RuntimeError, match="boom"):
        env.run()


def test_event_succeed_wakes_waiter():
    env = Environment()
    signal = Event(env)
    values = []

    def waiter(env):
        value = yield signal
        values.append(value)

    def trigger(env):
        yield env.timeout(4)
        signal.succeed("hello")

    env.process(waiter(env))
    env.process(trigger(env))
    env.run()
    assert values == ["hello"]


def test_process_return_value_via_yield():
    env = Environment()
    results = []

    def child(env):
        yield env.timeout(2)
        return 99

    def parent(env):
        value = yield env.process(child(env))
        results.append(value)

    env.process(parent(env))
    env.run()
    assert results == [99]


def test_run_without_until_drains_queue():
    env = Environment()

    def proc(env):
        for _ in range(3):
            yield env.timeout(1)

    env.process(proc(env))
    env.run()
    assert env.now == 3
