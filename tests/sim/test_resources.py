"""Tests of Resource and Store."""

import pytest

from repro.sim import Environment, Resource, Store


def test_resource_grants_up_to_capacity():
    env = Environment()
    resource = Resource(env, capacity=2)
    grant_times = []

    def user(env, hold):
        request = resource.request()
        yield request
        grant_times.append(env.now)
        yield env.timeout(hold)
        resource.release(request)

    for _ in range(3):
        env.process(user(env, 10))
    env.run()
    assert grant_times == [0, 0, 10]


def test_resource_capacity_must_be_positive():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_resource_context_manager_releases():
    env = Environment()
    resource = Resource(env, capacity=1)
    order = []

    def user(env, name):
        with resource.request() as request:
            yield request
            order.append((name, env.now))
            yield env.timeout(5)

    env.process(user(env, "a"))
    env.process(user(env, "b"))
    env.run()
    assert order == [("a", 0), ("b", 5)]


def test_resource_release_of_queued_request():
    env = Environment()
    resource = Resource(env, capacity=1)
    first = resource.request()
    second = resource.request()
    assert first.triggered and not second.triggered
    resource.release(second)  # cancel the queued request
    assert resource.count == 1
    resource.release(first)
    assert resource.count == 0


def test_store_put_get_fifo():
    env = Environment()
    store = Store(env)
    received = []

    def producer(env):
        for item in ("x", "y", "z"):
            yield store.put(item)
            yield env.timeout(1)

    def consumer(env):
        for _ in range(3):
            item = yield store.get()
            received.append(item)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert received == ["x", "y", "z"]


def test_store_get_blocks_until_item_available():
    env = Environment()
    store = Store(env)
    times = []

    def consumer(env):
        item = yield store.get()
        times.append((item, env.now))

    def producer(env):
        yield env.timeout(7)
        yield store.put("late")

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert times == [("late", 7)]


def test_store_respects_capacity():
    env = Environment()
    store = Store(env, capacity=1)
    progress = []

    def producer(env):
        yield store.put("a")
        progress.append(("a", env.now))
        yield store.put("b")
        progress.append(("b", env.now))

    def consumer(env):
        yield env.timeout(10)
        yield store.get()

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert progress == [("a", 0), ("b", 10)]


def test_store_len_reflects_items():
    env = Environment()
    store = Store(env)
    store.put("a")
    store.put("b")
    env.run()
    assert len(store) == 2
