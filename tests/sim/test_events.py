"""Tests of event primitives: success/failure, conditions, interrupts."""

import pytest

from repro.sim import AllOf, AnyOf, Environment, Event, Interrupt


def test_event_cannot_trigger_twice():
    env = Environment()
    event = Event(env)
    event.succeed(1)
    with pytest.raises(RuntimeError):
        event.succeed(2)


def test_event_value_unavailable_until_triggered():
    env = Environment()
    event = Event(env)
    with pytest.raises(AttributeError):
        _ = event.value
    event.succeed("v")
    assert event.value == "v"


def test_fail_requires_exception_instance():
    env = Environment()
    event = Event(env)
    with pytest.raises(TypeError):
        event.fail("not an exception")


def test_failed_event_raises_in_waiting_process():
    env = Environment()
    event = Event(env)
    seen = []

    def waiter(env):
        try:
            yield event
        except ValueError as exc:
            seen.append(str(exc))

    def trigger(env):
        yield env.timeout(1)
        event.fail(ValueError("broken"))

    env.process(waiter(env))
    env.process(trigger(env))
    env.run()
    assert seen == ["broken"]


def test_all_of_waits_for_every_event():
    env = Environment()
    finish_times = []

    def waiter(env):
        yield AllOf(env, [env.timeout(5), env.timeout(9), env.timeout(2)])
        finish_times.append(env.now)

    env.process(waiter(env))
    env.run()
    assert finish_times == [9]


def test_any_of_fires_at_first_event():
    env = Environment()
    finish_times = []

    def waiter(env):
        yield AnyOf(env, [env.timeout(5), env.timeout(9), env.timeout(2)])
        finish_times.append(env.now)

    env.process(waiter(env))
    env.run()
    assert finish_times == [2]


def test_all_of_empty_list_fires_immediately():
    env = Environment()
    condition = AllOf(env, [])
    assert condition.triggered


def test_interrupt_raises_inside_process():
    env = Environment()
    causes = []

    def sleeper(env):
        try:
            yield env.timeout(100)
        except Interrupt as interrupt:
            causes.append(interrupt.cause)
            causes.append(env.now)

    def interrupter(env, victim):
        yield env.timeout(10)
        victim.interrupt("wake up")

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert causes == ["wake up", 10]


def test_cannot_interrupt_finished_process():
    env = Environment()

    def quick(env):
        yield env.timeout(1)

    process = env.process(quick(env))
    env.run()
    with pytest.raises(RuntimeError):
        process.interrupt()


def test_process_is_alive_until_done():
    env = Environment()

    def quick(env):
        yield env.timeout(5)

    process = env.process(quick(env))
    assert process.is_alive
    env.run()
    assert not process.is_alive


def test_yielding_non_event_raises_type_error():
    env = Environment()

    def bad(env):
        yield 42

    env.process(bad(env))
    with pytest.raises(TypeError):
        env.run()


def test_process_requires_generator():
    env = Environment()
    with pytest.raises(TypeError):
        env.process(lambda: None)
