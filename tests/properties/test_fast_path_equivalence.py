"""Property test: the batch kernel is byte-identical to the event loop.

The slot-batch fast path (:mod:`repro.piconet.batch_kernel`) promises to
be a pure executor optimization — same helpers, same order, same RNG
draws — so for *any* valid scenario the simulation results must match the
per-slot reference event loop exactly, not approximately.  This test
draws randomized scenarios (single piconets, interference fields,
scatternet bridges; SCO links, adaptive segmentation, every poller kind,
ideal/iid/Gilbert-Elliott channels) from the same strategies the
serialization property tests use, runs each once per path, and compares
every piconet's per-flow statistics and slot ledger for exact equality.
"""

import dataclasses
import json

from hypothesis import HealthCheck, given, settings
from test_scenario_properties import scenario_specs

from repro.scenario import compile_scenario

DURATION_S = 0.4
SEED = 7


def _with_fast_path(spec, fast):
    return dataclasses.replace(spec, piconets=tuple(
        dataclasses.replace(piconet, fast_path=fast)
        for piconet in spec.piconets))


def _observed(spec, fast):
    """Run one variant and capture everything the repo reports on.

    Serialized through JSON so NaN delay percentiles (flows that delivered
    nothing) compare equal instead of failing ``==``.  Some randomized
    specs are rejected at compile/run time (e.g. extreme Gilbert-Elliott
    parameters, unsatisfiable SCO reservations); the rejection is
    deterministic behaviour both paths must reproduce identically, so the
    error becomes the observation instead of discarding the example.
    """
    try:
        compiled = compile_scenario(_with_fast_path(spec, fast), seed=SEED)
        compiled.run(DURATION_S)
    except ValueError as error:
        return f"ValueError: {error}"
    observed = {}
    for name, piconet in compiled.piconets.items():
        pic = piconet.piconet
        observed[name] = {
            "slots": pic.slot_accounting(),
            "flows": {state.spec.flow_id: pic.flow_stats(state.spec.flow_id)
                      for state in pic.flow_states()},
        }
    return json.dumps(observed, sort_keys=True)


@given(scenario_specs())
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_fast_path_results_byte_identical(spec):
    assert _observed(spec, fast=True) == _observed(spec, fast=False)
