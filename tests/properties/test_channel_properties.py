"""Property-based tests of the channel-state and interference invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baseband.channel import GilbertElliottChannel
from repro.baseband.interference import InterferenceField
from repro.sim.rng import RandomStreams

probabilities = st.floats(min_value=0.0, max_value=1.0,
                          allow_nan=False, allow_infinity=False)
duty_cycles = st.floats(min_value=0.0, max_value=1.0,
                        allow_nan=False, allow_infinity=False)


# ------------------------------------------------- Gilbert-Elliott closure

def iterated_bad_probability(p_gb: float, p_bg: float, slots: int,
                             from_good: bool) -> float:
    """``P(bad after slots)`` by explicit one-slot steps of the chain."""
    p_bad = 0.0 if from_good else 1.0
    for _ in range(slots):
        p_bad = p_bad * (1.0 - p_bg) + (1.0 - p_bad) * p_gb
    return p_bad


@given(p_gb=probabilities, p_bg=probabilities,
       slots=st.integers(min_value=0, max_value=400),
       from_good=st.booleans())
@settings(max_examples=200, deadline=None)
def test_closed_form_n_step_matches_explicit_single_slot_steps(
        p_gb, p_bg, slots, from_good):
    channel = GilbertElliottChannel(p_gb=p_gb, p_bg=p_bg)
    closed = channel.n_step_bad_probability(slots, from_good=from_good)
    explicit = iterated_bad_probability(p_gb, p_bg, slots, from_good)
    assert closed == pytest.approx(explicit, abs=1e-9)
    assert 0.0 <= closed <= 1.0


@given(p_gb=st.floats(min_value=1e-6, max_value=1.0),
       p_bg=st.floats(min_value=1e-6, max_value=1.0),
       from_good=st.booleans())
@settings(max_examples=50, deadline=None)
def test_n_step_converges_to_the_stationary_distribution(
        p_gb, p_bg, from_good):
    channel = GilbertElliottChannel(p_gb=p_gb, p_bg=p_bg)
    total = p_gb + p_bg
    if total < 2.0:  # total == 2 oscillates deterministically
        # the chain mixes at rate |1 - total|: give it 40 time constants
        slots = int(40 / min(total, 2.0 - total)) + 1
        limit = channel.n_step_bad_probability(slots, from_good=from_good)
        assert limit == pytest.approx(channel.stationary_bad, abs=1e-6)
    assert channel.n_step_bad_probability(0, from_good=True) == 0.0
    assert channel.n_step_bad_probability(0, from_good=False) == 1.0
    with pytest.raises(ValueError):
        channel.n_step_bad_probability(-1)


# --------------------------------------------- interference field counting

@given(seed=st.integers(min_value=0, max_value=2**32 - 1),
       duties=st.lists(duty_cycles, min_size=1, max_size=4),
       horizon=st.integers(min_value=1, max_value=400))
@settings(max_examples=60, deadline=None)
def test_field_collisions_match_brute_force_hop_overlap_count(
        seed, duties, horizon):
    field = InterferenceField(streams=RandomStreams(seed).child("intf"))
    victim = field.register("victim")
    others = [field.register(f"i{index}", duty_cycle=duty)
              for index, duty in enumerate(duties)]

    brute_force = 0
    for slot in range(horizon):
        channel = victim.hops.channel_at(slot)
        for other in others:
            if other.active_at(slot) \
                    and other.hops.channel_at(slot) == channel:
                brute_force += 1

    assert field.count_collisions("victim", horizon) == brute_force
    # per-slot counts agree too, and the victim never collides with itself
    assert all(field.collisions("victim", slot)
               <= len(others) for slot in range(horizon))


@given(seed=st.integers(min_value=0, max_value=2**32 - 1),
       duties=st.lists(duty_cycles, min_size=0, max_size=4),
       horizon=st.integers(min_value=1, max_value=400),
       data=st.data())
@settings(max_examples=60, deadline=None)
def test_occupancy_index_equals_pairwise_scan(seed, duties, horizon, data):
    """The tentpole equivalence: every public collision accessor built on
    the occupancy index returns exactly what the retained pairwise
    reference scan returns — same integers, bit-identical floats —
    regardless of the order slots are first queried in."""
    field = InterferenceField(streams=RandomStreams(seed).child("intf"))
    field.register("victim")
    for index, duty in enumerate(duties):
        field.register(f"i{index}", duty_cycle=duty)

    # query in an arbitrary order first, so the index's lazy block builds
    # and the pairwise scan's lazy per-slot draws interleave arbitrarily
    probes = data.draw(st.lists(
        st.integers(min_value=0, max_value=horizon - 1), max_size=20))
    for slot in probes:
        assert field.collisions("victim", slot) \
            == field.collisions_pairwise("victim", slot)

    pairwise = [field.collisions_pairwise("victim", slot)
                for slot in range(horizon)]
    assert [field.collisions("victim", slot) for slot in range(horizon)] \
        == pairwise
    assert field.count_collisions("victim", horizon) == sum(pairwise)
    per_collision = field.ber_per_collision
    for slot in probes:
        expected = min(0.5, pairwise[slot] * per_collision) \
            if pairwise[slot] else 0.0
        assert field.collision_ber("victim", slot) == expected

    start = data.draw(st.integers(min_value=0, max_value=horizon - 1))
    slots = data.draw(st.integers(min_value=1, max_value=5))
    expected_mean = sum(
        min(0.5, count * per_collision) if count else 0.0
        for count in (field.collisions_pairwise("victim", s)
                      for s in range(start, start + slots))) / slots
    assert field.mean_collision_ber("victim", start, slots) == expected_mean


@given(seed=st.integers(min_value=0, max_value=2**32 - 1),
       reports=st.lists(st.tuples(st.integers(min_value=0, max_value=380),
                                  st.integers(min_value=1, max_value=5)),
                        max_size=12),
       horizon=st.integers(min_value=1, max_value=400))
@settings(max_examples=60, deadline=None)
def test_coupled_occupancy_equals_pairwise_scan(seed, reports, horizon):
    """Coupled members (reported activity, overlapping and out-of-order
    reports included) agree with the pairwise reference too."""
    field = InterferenceField(streams=RandomStreams(seed).child("intf"))
    field.register_coupled("victim")
    field.register_coupled("peer")
    field.register("noise", duty_cycle=0.5)
    # interleave reports with queries so reports land both before and
    # after the occupancy rows / victim caches cover their slots
    for index, (start, slots) in enumerate(reports):
        field.report_transmission("peer", start, slots)
        if index % 2:
            field.count_collisions("victim", horizon)
    pairwise = [field.collisions_pairwise("victim", slot)
                for slot in range(horizon)]
    assert [field.collisions("victim", slot) for slot in range(horizon)] \
        == pairwise
    assert field.count_collisions("victim", horizon) == sum(pairwise)


@given(duties=st.lists(duty_cycles, min_size=0, max_size=5))
@settings(max_examples=60, deadline=None)
def test_field_analytic_collision_probability_product_form(duties):
    field = InterferenceField(streams=5)
    field.register("victim")
    for index, duty in enumerate(duties):
        field.register(f"i{index}", duty_cycle=duty)
    expected = 1.0
    for duty in duties:
        expected *= 1.0 - duty / field.channels
    assert field.expected_collision_probability("victim") == \
        pytest.approx(1.0 - expected)


def test_field_empirical_rate_approaches_the_analytic_probability():
    field = InterferenceField(streams=17)
    field.register("victim")
    field.register("a", duty_cycle=1.0)
    field.register("b", duty_cycle=0.5)
    horizon = 60_000
    # collider-slots over the horizon: the expected count sums each
    # member's own duty/channels rate
    expected = (1.0 + 0.5) / field.channels * horizon
    count = field.count_collisions("victim", horizon)
    assert count == pytest.approx(expected, rel=0.15)
