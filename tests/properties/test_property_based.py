"""Property-based tests (hypothesis) of the core invariants."""

import math

from hypothesis import HealthCheck, example, given, settings
from hypothesis import strategies as st

from repro.baseband.segmentation import BestFitSegmentationPolicy
from repro.core import TSpec, TokenBucket, cbr_tspec, compute_wait_bound, delay_bound, min_poll_efficiency, rate_for_delay_bound
from repro.core.admission import AdmissionController, GSFlowRequest
from repro.core.link_budget import LinkBudget
from repro.core.planning import PlannerConfig, ServedSegment, VariableIntervalPlanner
from repro.core.wait_bound import HigherPriorityStream
from repro.piconet.flows import DOWNLINK, UPLINK
from repro.sim import Environment

MS = 1e-3
PAPER_TYPES = ("DH1", "DH3")


# ----------------------------------------------------------- segmentation

@given(size=st.integers(min_value=1, max_value=5000))
def test_segmentation_conserves_bytes_and_respects_capacities(size):
    policy = BestFitSegmentationPolicy(PAPER_TYPES)
    pieces = policy.segment_sizes(size)
    assert sum(n for _, n in pieces) == size
    assert all(0 < n <= ptype.max_payload for ptype, n in pieces)
    # only the last segment may be smaller than a full DH1
    assert all(n > 0 for _, n in pieces)


@given(size=st.integers(min_value=1, max_value=5000))
def test_segment_count_is_monotone_lower_bound(size):
    policy = BestFitSegmentationPolicy(PAPER_TYPES)
    count = policy.segment_count(size)
    assert count >= math.ceil(size / 183)
    assert count <= math.ceil(size / 27)


# ------------------------------------------------------- poll efficiency

@given(m=st.integers(min_value=1, max_value=600),
       span=st.integers(min_value=0, max_value=200))
@settings(max_examples=40, deadline=None)
def test_min_poll_efficiency_is_a_true_minimum(m, span):
    M = m + span
    eta = min_poll_efficiency(m, M, PAPER_TYPES)
    exhaustive = min_poll_efficiency(m, M, PAPER_TYPES, exhaustive=True)
    assert eta == exhaustive
    policy = BestFitSegmentationPolicy(PAPER_TYPES)
    # no packet size in range achieves a lower efficiency
    for size in (m, M, (m + M) // 2):
        assert size / policy.segment_count(size) >= eta - 1e-9


class _MidstreamMixingPolicy(BestFitSegmentationPolicy):
    """Non-final segments use the *second largest* type: plans mix types
    mid-stream, so segment-count breakpoints sit at mixed-capacity sums."""

    def choose_type(self, remaining):
        for ptype in self.by_capacity:
            if remaining <= ptype.max_payload:
                return ptype
        return self.by_capacity[-2] if len(self.by_capacity) > 1 \
            else self.largest


#: allowed-type sets whose segment plans mix packet types
MIXING_TYPE_SETS = [
    ("DH1", "DH3"),
    ("DH1", "DH3", "DH5"),
    ("DM1", "DH3"),
    ("DH1", "DM3", "DH5"),
    ("DM1", "DM3", "DH3", "DH5"),
]


@given(m=st.integers(min_value=1, max_value=500),
       span=st.integers(min_value=0, max_value=300),
       types=st.sampled_from(MIXING_TYPE_SETS),
       mixing=st.booleans())
@settings(max_examples=60, deadline=None)
# regression: only multiples of single capacities were enumerated as
# breakpoint candidates, missing mixed-type sums (e.g. DM3+DH3+1 = 305)
@example(m=250, span=110, types=("DH1", "DM3", "DH3"), mixing=True)
def test_min_poll_efficiency_true_minimum_across_type_sets(m, span, types,
                                                           mixing):
    M = m + span
    policy_cls = _MidstreamMixingPolicy if mixing \
        else BestFitSegmentationPolicy
    policy = policy_cls(types)
    eta = min_poll_efficiency(m, M, policy=policy)
    exhaustive = min_poll_efficiency(m, M, policy=policy, exhaustive=True)
    assert eta == exhaustive


# -------------------------------------------------------------- gs math

@given(rate=st.floats(min_value=8800.0, max_value=200_000.0),
       ctot=st.floats(min_value=0.0, max_value=1000.0),
       dtot=st.floats(min_value=0.0, max_value=0.05))
def test_delay_bound_positive_and_decreasing_in_rate(rate, ctot, dtot):
    tspec = cbr_tspec(0.020, 144, 176)
    bound = delay_bound(tspec, rate, ctot, dtot)
    assert bound > 0
    assert delay_bound(tspec, rate * 2, ctot, dtot) <= bound + 1e-12


@given(target=st.floats(min_value=0.012, max_value=0.5),
       dtot=st.floats(min_value=0.0, max_value=0.01))
def test_rate_for_delay_bound_round_trip(target, dtot):
    tspec = cbr_tspec(0.020, 144, 176)
    rate = rate_for_delay_bound(tspec, target, ctot=144.0, dtot=dtot)
    if target <= dtot:
        assert rate is None
    else:
        assert rate is not None and rate >= tspec.r
        assert delay_bound(tspec, rate, 144.0, dtot) <= target + 1e-9


# ----------------------------------------------------------- token bucket

@given(st.lists(st.tuples(st.floats(min_value=0.0, max_value=0.02),
                          st.integers(min_value=144, max_value=176)),
                min_size=1, max_size=100))
def test_cbr_spaced_arrivals_always_conform(gaps_and_sizes):
    tspec = cbr_tspec(0.020, 144, 176)
    bucket = TokenBucket(tspec)
    now = 0.0
    for extra_gap, size in gaps_and_sizes:
        now += 0.020 + extra_gap     # at least the CBR interval apart
        assert bucket.consume(size, now)


# ------------------------------------------------------------ wait bound

@given(intervals=st.lists(st.floats(min_value=5 * MS, max_value=100 * MS),
                          min_size=0, max_size=6))
# regression: an overloaded higher-priority set (sum s_max_j / t_j >= 1)
# used to diverge to float infinity and crash with OverflowError
@example(intervals=[0.0625, 0.005, 0.005, 0.005, 0.005])
def test_wait_bound_monotone_in_higher_priority_set(intervals):
    m_t = 3.75 * MS
    streams = [HigherPriorityStream(interval=i, max_transaction_time=2.5 * MS)
               for i in intervals]
    previous = 0.0
    for k in range(len(streams) + 1):
        result = compute_wait_bound(m_t, streams[:k])
        assert result.wait_bound >= max(previous, m_t) - 1e-12
        previous = result.wait_bound


# -------------------------------------------------------------- admission

@given(st.lists(st.tuples(st.integers(min_value=1, max_value=7),
                          st.sampled_from([UPLINK, DOWNLINK]),
                          st.floats(min_value=8800.0, max_value=30_000.0)),
                min_size=1, max_size=10))
@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
# regression (hypothesis-found): over a whole greedy *sequence* piggybacking
# can end up with fewer flows — pairing admits an expensive flow whose
# capacity two later cheap flows needed.  The sound invariant is
# per-decision dominance, checked below.
@example(flows=[(1, UPLINK, 8800.0), (1, DOWNLINK, 10473.0),
                (1, UPLINK, 26585.0), (1, UPLINK, 8800.0),
                (1, UPLINK, 8800.0)])
def test_admission_satisfies_eq9_and_piggyback_dominates_per_decision(flows):
    tspec = cbr_tspec(0.020, 144, 176)

    def request(index, slave, direction, rate):
        return GSFlowRequest(flow_id=index, slave=slave, direction=direction,
                             tspec=tspec, rate=rate, eta_min=144.0)

    def check_invariants(controller):
        # invariant: every accepted stream satisfies Eq. 9
        for stream in controller.streams:
            assert stream.wait_bound <= stream.interval + 1e-12
        # invariant: priorities are a permutation of 1..n_streams
        priorities = sorted(s.priority for s in controller.streams)
        assert priorities == list(range(1, len(priorities) + 1))

    oblivious = AdmissionController(6 * 625e-6, piggyback_aware=False)
    admitted = []
    for index, (slave, direction, rate) in enumerate(flows, start=1):
        # a piggyback-aware controller holding exactly the same admitted
        # set (replayed; dominance makes every replayed admission succeed)
        aware = AdmissionController(6 * 625e-6, piggyback_aware=True)
        for args in admitted:
            assert aware.request_admission(request(*args)).accepted
        check_invariants(aware)
        decision = oblivious.request_admission(
            request(index, slave, direction, rate))
        check_invariants(oblivious)
        if decision.accepted:
            # ...never rejects a flow the pair-oblivious controller accepts
            assert aware.request_admission(
                request(index, slave, direction, rate)).accepted
            admitted.append((index, slave, direction, rate))


@given(st.lists(st.tuples(st.integers(min_value=1, max_value=7),
                          st.sampled_from([UPLINK, DOWNLINK]),
                          st.floats(min_value=8800.0, max_value=30_000.0)),
                min_size=1, max_size=10))
@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_ideal_budget_admission_equals_oblivious(flows):
    # an ideal LinkBudget (no loss, full residency, no absence) must be
    # indistinguishable from carrying no budget at all: same decisions,
    # same priorities, same intervals and wait bounds — bit for bit
    tspec = cbr_tspec(0.020, 144, 176)

    def request(index, slave, direction, rate, budget):
        return GSFlowRequest(flow_id=index, slave=slave, direction=direction,
                             tspec=tspec, rate=rate, eta_min=144.0,
                             budget=budget)

    oblivious = AdmissionController(6 * 625e-6, piggyback_aware=True)
    budgeted = AdmissionController(6 * 625e-6, piggyback_aware=True)
    for index, (slave, direction, rate) in enumerate(flows, start=1):
        plain = oblivious.request_admission(
            request(index, slave, direction, rate, None))
        ideal = budgeted.request_admission(
            request(index, slave, direction, rate, LinkBudget()))
        assert plain.accepted == ideal.accepted
        assert plain.reason == ideal.reason
        plain_streams = sorted(
            (s.flow_ids, s.priority, s.interval, s.wait_bound)
            for s in oblivious.streams)
        ideal_streams = sorted(
            (s.flow_ids, s.priority, s.interval, s.wait_bound)
            for s in budgeted.streams)
        assert plain_streams == ideal_streams


# ---------------------------------------------------------------- planner

@given(st.lists(st.tuples(st.booleans(),
                          st.integers(min_value=144, max_value=176),
                          st.floats(min_value=0.0, max_value=5 * MS)),
                min_size=1, max_size=50))
def test_variable_planner_never_plans_polls_closer_than_interval(events):
    config = PlannerConfig(flow_id=1, interval=16 * MS, rate=9000.0,
                           direction=UPLINK)
    planner = VariableIntervalPlanner(config, start_time=0.0)
    now = 0.0
    previous_planned = None
    for packet_id, (has_data, size, jitter) in enumerate(events, start=1):
        now = max(now, planner.planned_time()) + jitter
        served = None
        if has_data:
            served = ServedSegment(hl_packet_id=packet_id, is_last_segment=True,
                                   hl_packet_size=size, hl_arrival_time=None)
        planner.record_poll(now, served)
        planned = planner.planned_time()
        if previous_planned is not None:
            assert planned >= previous_planned - 1e-9
        previous_planned = planned


# ------------------------------------------------------------------- DES

@given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1,
                max_size=50))
def test_event_loop_processes_timeouts_in_order(delays):
    env = Environment()
    fired = []

    def waiter(env, delay):
        yield env.timeout(delay)
        fired.append(env.now)

    for delay in delays:
        env.process(waiter(env, delay))
    env.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
