"""Property tests of the declarative scenario layer.

* ``ScenarioSpec.from_dict(spec.to_dict()) == spec`` over randomly
  generated valid specs (through an actual JSON encode/decode, so any
  type the wire format cannot carry fails here); and
* ``compile()`` determinism: the same spec + seed produce byte-identical
  aggregated sweep rows no matter which execution backend ran the tasks —
  shipping the spec as a serialized ``scenario`` payload through the
  orchestrator's plain-dict task tuples.
"""

import json

from hypothesis import given, settings, strategies as st

from repro.experiments.orchestrator import SweepRunner
from repro.scenario import (
    BASELINE_POLLER_KINDS,
    BridgeSpec,
    ChannelSpec,
    EventSpec,
    FlowSpec,
    ImprovementsSpec,
    InterferenceSpec,
    PiconetSpec,
    PollerSpec,
    ScenarioSpec,
    ScoSpec,
    figure4_spec,
)

small_floats = st.floats(min_value=0.001, max_value=1.0, allow_nan=False,
                         allow_infinity=False)
names = st.text(alphabet="abcdefgh-", min_size=1, max_size=8)


@st.composite
def channel_specs(draw):
    model = draw(st.sampled_from(["ideal", "iid", "gilbert"]))
    scale = ()
    if model == "iid" and draw(st.booleans()):
        slaves = draw(st.lists(st.integers(1, 7), min_size=1, max_size=4,
                               unique=True))
        scale = tuple((slave, draw(st.floats(0.0, 4.0))) for slave in slaves)
    return ChannelSpec(
        model=model,
        ber=draw(st.floats(0.0, 1e-2)),
        p_bg=draw(st.floats(0.001, 1.0)),
        stationary_bad=draw(st.floats(0.01, 0.99)),
        slave_ber_scale=scale,
        stream=draw(names))


@st.composite
def flow_specs(draw, flow_id, slave_count):
    traffic_class = draw(st.sampled_from(["GS", "BE"]))
    has_source = draw(st.booleans())
    interval = draw(small_floats) if has_source else None
    size = None
    if has_source:
        if draw(st.booleans()):
            low = draw(st.integers(1, 300))
            size = (low, low + draw(st.integers(0, 300)))
        else:
            size = draw(st.integers(1, 600))
    rng_stream = draw(st.one_of(st.none(), names))
    bound = None
    rate = None
    if traffic_class == "GS" and has_source and draw(st.booleans()):
        if draw(st.booleans()):
            bound = draw(small_floats)
        else:
            rate = draw(st.floats(100.0, 1e5))
    return FlowSpec(
        flow_id=flow_id,
        slave=draw(st.integers(1, slave_count)),
        direction=draw(st.sampled_from(["UL", "DL"])),
        traffic_class=traffic_class,
        interval_s=interval,
        size=size,
        allowed_types=draw(st.one_of(
            st.none(), st.just(("DH1",)), st.just(("DM1", "DM3")))),
        rng_stream=rng_stream,
        stagger=draw(st.booleans()) if has_source and rng_stream else False,
        delay_bound=bound,
        rate=rate)


@st.composite
def piconet_specs(draw, name=None):
    slave_count = draw(st.integers(1, 7))
    flow_count = draw(st.integers(0, 5))
    flows = tuple(draw(flow_specs(flow_id, slave_count))
                  for flow_id in range(1, flow_count + 1))
    sco_links = []
    used_slaves = set()
    for flow in flows:
        if (flow.traffic_class == "GS" and not flow.gs_managed
                and flow.slave not in used_slaves and draw(st.booleans())):
            used_slaves.add(flow.slave)
            sco_links.append(ScoSpec(
                slave=flow.slave,
                packet_type=draw(st.sampled_from(["HV1", "HV2", "HV3"])),
                ul_flow_id=flow.flow_id if flow.direction == "UL" else None,
                dl_flow_id=flow.flow_id if flow.direction == "DL" else None))
    kind = draw(st.sampled_from(
        ("round_robin", "none") + BASELINE_POLLER_KINDS))
    only = None
    if kind == "round_robin" and draw(st.booleans()):
        only = tuple(draw(st.lists(st.integers(1, 7), max_size=3,
                                   unique=True)))
    return PiconetSpec(
        name=name if name is not None else draw(names),
        slaves=tuple(f"s{i}" for i in range(slave_count)),
        flows=flows,
        sco_links=tuple(sco_links),
        allowed_types=draw(st.sampled_from(
            [("DH1", "DH3"), ("DH1",), ("DM1", "DM3")])),
        adaptive_segmentation=draw(st.booleans()),
        align_even_slots=draw(st.booleans()),
        channel=draw(channel_specs()),
        poller=PollerSpec(kind=kind, only_slaves=only),
        improvements=ImprovementsSpec(
            *(draw(st.booleans()) for _ in range(5))),
        rng_namespace=draw(st.one_of(st.none(), names)))


@st.composite
def scenario_specs(draw):
    shape = draw(st.sampled_from(["single", "interfered", "bridged"]))
    if shape == "interfered":
        victim = draw(piconet_specs())
        return ScenarioSpec(
            piconets=(victim,),
            interference=InterferenceSpec(
                victim=victim.name,
                interferer_duties=tuple(draw(st.lists(
                    st.floats(0.0, 1.0), max_size=4))),
                ber_per_collision=draw(st.one_of(
                    st.none(), st.floats(0.01, 0.5)))))
    if shape == "bridged":
        first = draw(piconet_specs(name="alpha"))
        second = draw(piconet_specs(name="beta"))
        return ScenarioSpec(
            piconets=(first, second),
            bridges=(BridgeSpec(
                piconet_a="alpha", slave_a=draw(
                    st.integers(1, len(first.slaves))),
                piconet_b="beta", slave_b=draw(
                    st.integers(1, len(second.slaves))),
                share_a=draw(st.floats(0.2, 0.8)),
                period_slots=draw(st.integers(24, 200)),
                switch_slots=draw(st.integers(0, 4)),
                negotiated=draw(st.booleans())),))
    return ScenarioSpec(piconets=(draw(piconet_specs()),))


@given(scenario_specs())
@settings(max_examples=60, deadline=None)
def test_spec_round_trips_through_json(spec):
    wire = json.dumps(spec.to_dict(), sort_keys=True)
    assert ScenarioSpec.from_dict(json.loads(wire)) == spec
    # serialization is deterministic: same spec -> same wire bytes
    assert json.dumps(spec.to_dict(), sort_keys=True) == wire


@st.composite
def timeline_events(draw):
    """Valid events against the figure-4 victim piconet of
    :func:`churn_recovery_spec` (GS flows 1-4 on slaves 1-3, BE slaves
    4-7, a 4-interferer field)."""
    kind = draw(st.sampled_from(
        ["park-cycle", "interferer", "flow-renegotiate", "flow-remove"]))
    at_s = draw(small_floats)
    if kind == "park-cycle":
        slave = draw(st.integers(4, 7))  # BE slaves: no GS bookkeeping ties
        return [EventSpec(at_s=at_s, kind="park", slave=slave),
                EventSpec(at_s=at_s + draw(small_floats), kind="unpark",
                          slave=slave)]
    if kind == "interferer":
        return [EventSpec(
            at_s=at_s,
            kind=draw(st.sampled_from(["interferer-on", "interferer-off"])),
            interferer=draw(st.integers(1, 4)))]
    if kind == "flow-remove":
        return [EventSpec(at_s=at_s, kind="flow-remove",
                          flow_id=draw(st.integers(5, 12)))]
    return [EventSpec(
        at_s=at_s, kind="flow-renegotiate",
        flow_id=draw(st.integers(1, 4)),
        max_retries=draw(st.integers(0, 5)),
        backoff_s=draw(small_floats),
        min_observations=draw(st.integers(1, 50)),
        tolerance=draw(st.floats(0.0, 0.5)))]


@st.composite
def timeline_scenario_specs(draw):
    from dataclasses import replace

    from repro.scenario import TimelineSpec, churn_recovery_spec

    events = [event
              for group in draw(st.lists(timeline_events(), max_size=5))
              for event in group]
    removed = set()
    deduped = []
    for event in sorted(events, key=lambda event: event.at_s):
        # a flow id can only be removed once, and parking the same slave
        # twice needs an interleaved unpark the flat sort cannot promise —
        # keep one park/unpark cycle per slave
        if event.kind == "flow-remove":
            if event.flow_id in removed:
                continue
            removed.add(event.flow_id)
        deduped.append(event)
    seen_slaves = set()
    kept = []
    for event in deduped:
        if event.kind in ("park", "unpark"):
            if event.kind == "park" and event.slave in seen_slaves:
                continue
            if event.kind == "park":
                seen_slaves.add(event.slave)
            elif event.slave not in seen_slaves:
                continue
        kept.append(event)
    return replace(churn_recovery_spec(),
                   timeline=TimelineSpec(events=tuple(kept)))


@given(timeline_scenario_specs())
@settings(max_examples=40, deadline=None)
def test_timeline_spec_round_trips_through_json(spec):
    wire = json.dumps(spec.to_dict(), sort_keys=True)
    assert ScenarioSpec.from_dict(json.loads(wire)) == spec
    assert json.dumps(spec.to_dict(), sort_keys=True) == wire


def test_compile_rows_byte_identical_across_backends_via_payload():
    """Same serialized spec + seed => byte-identical aggregated rows on the
    serial, process and batch backends (the payload travels as a plain
    dict inside each task tuple)."""
    spec = figure4_spec(delay_requirement=0.04,
                        channel=ChannelSpec(model="iid", ber=3e-4))
    overrides = {
        "scenario": spec.to_dict(),
        "delay_requirement": [0.04],
        "duration_seconds": 0.6,
    }
    results = {
        name: SweepRunner(max_workers=2, backend=name).run(
            "figure5", overrides=overrides, master_seed=13)
        for name in ("serial", "process", "batch")}
    serial = results["serial"]
    assert serial.rows
    assert serial.rows[0]["mean"]["admitted"] is True
    assert serial.to_json() == results["process"].to_json()
    assert serial.to_json() == results["batch"].to_json()


def test_timeline_rows_byte_identical_across_backends():
    """A park/unpark timeline ships inside the scenario payload and fires
    identically on every backend (worker processes re-install it from the
    serialized spec)."""
    from dataclasses import replace

    from repro.scenario import TimelineSpec

    spec = replace(
        figure4_spec(delay_requirement=0.04),
        timeline=TimelineSpec(events=(
            EventSpec(at_s=0.2, kind="park", slave=1),
            EventSpec(at_s=0.4, kind="unpark", slave=1))))
    overrides = {
        "scenario": spec.to_dict(),
        "delay_requirement": [0.04],
        "duration_seconds": 0.6,
    }
    results = {
        name: SweepRunner(max_workers=2, backend=name).run(
            "figure5", overrides=overrides, master_seed=7)
        for name in ("serial", "process", "batch")}
    serial = results["serial"]
    assert serial.rows
    assert serial.to_json() == results["process"].to_json()
    assert serial.to_json() == results["batch"].to_json()
