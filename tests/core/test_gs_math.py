"""Tests of the RFC 2212 delay-bound mathematics (Eq. 1)."""

import pytest

from repro.core import TSpec, cbr_tspec, delay_bound, rate_for_delay_bound
from repro.core.gs_math import bound_at_token_rate, evaluate


@pytest.fixture
def paper_tspec():
    return cbr_tspec(0.020, 144, 176)


def test_delay_bound_high_rate_case(paper_tspec):
    # R >= p: bound = (M + C)/R + D
    bound = delay_bound(paper_tspec, rate=17_600, ctot=144, dtot=0.00375)
    assert bound == pytest.approx((176 + 144) / 17_600 + 0.00375)


def test_delay_bound_with_burst_term():
    tspec = TSpec(p=20_000, r=10_000, b=2_000, m=100, M=500)
    rate = 12_000   # r <= R < p
    bound = delay_bound(tspec, rate, ctot=0, dtot=0)
    expected = ((tspec.b - tspec.M) / rate) * ((tspec.p - rate) / (tspec.p - tspec.r)) \
        + tspec.M / rate
    assert bound == pytest.approx(expected)


def test_delay_bound_monotonically_decreasing_in_rate(paper_tspec):
    rates = [9_000, 12_000, 20_000, 40_000]
    bounds = [delay_bound(paper_tspec, r, 144, 0.00375) for r in rates]
    assert all(earlier > later for earlier, later in zip(bounds, bounds[1:]))


def test_delay_bound_rejects_rate_below_token_rate(paper_tspec):
    with pytest.raises(ValueError):
        delay_bound(paper_tspec, rate=1_000, ctot=0, dtot=0)
    with pytest.raises(ValueError):
        delay_bound(paper_tspec, rate=-1, ctot=0, dtot=0)
    with pytest.raises(ValueError):
        delay_bound(paper_tspec, rate=10_000, ctot=-1, dtot=0)


def test_bound_at_token_rate_is_the_loosest_needed(paper_tspec):
    loosest = bound_at_token_rate(paper_tspec, ctot=144, dtot=0.010)
    assert loosest == pytest.approx((176 + 144) / 8800 + 0.010)
    tighter = delay_bound(paper_tspec, 12_000, 144, 0.010)
    assert tighter < loosest


def test_rate_for_delay_bound_inverts_delay_bound(paper_tspec):
    for target in (0.025, 0.030, 0.040):
        rate = rate_for_delay_bound(paper_tspec, target, ctot=144, dtot=0.00625)
        assert rate is not None
        achieved = delay_bound(paper_tspec, rate, 144, 0.00625)
        assert achieved == pytest.approx(target) or rate == paper_tspec.r


def test_rate_for_delay_bound_with_burst_case():
    tspec = TSpec(p=50_000, r=10_000, b=3_000, m=100, M=500)
    target = 0.08
    rate = rate_for_delay_bound(tspec, target, ctot=200, dtot=0.005)
    assert rate is not None and tspec.r <= rate <= tspec.p
    assert delay_bound(tspec, rate, 200, 0.005) == pytest.approx(target)


def test_rate_for_delay_bound_infeasible_target(paper_tspec):
    # a target below the rate-independent deviation cannot be met
    assert rate_for_delay_bound(paper_tspec, 0.004, ctot=144, dtot=0.00625) is None
    with pytest.raises(ValueError):
        rate_for_delay_bound(paper_tspec, -0.01, 0, 0)


def test_rate_for_loose_bound_clamps_to_token_rate(paper_tspec):
    rate = rate_for_delay_bound(paper_tspec, 1.0, ctot=144, dtot=0.00375)
    assert rate == pytest.approx(paper_tspec.r)


def test_evaluate_returns_structured_result(paper_tspec):
    result = evaluate(paper_tspec, 10_000, 144, 0.005)
    assert float(result) == result.bound
    assert result.rate == 10_000
