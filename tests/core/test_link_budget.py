"""Unit tests of the effective-capacity link budget abstraction."""

import math

import pytest

from repro.baseband.fec import packet_error_probabilities
from repro.baseband.packets import BasebandPacket, resolve_types
from repro.core.link_budget import (
    IDEAL_LINK_BUDGET,
    MAX_LOSS,
    LinkBudget,
    bridge_residency,
    worst_case_budget,
    worst_data_loss,
)
from repro.piconet.bridge import ROLE_A, ROLE_B, BridgeSchedule

PAPER_TYPES = ("DH1", "DH3")


# ------------------------------------------------------------- LinkBudget

def test_default_budget_is_ideal_identity():
    budget = LinkBudget()
    assert budget.is_ideal
    assert budget.retransmission_factor() == 1.0
    # the ideal budget returns the *same* float, not a recomputed one
    interval = 0.0163125
    assert budget.effective_interval(interval) is interval
    assert budget is not IDEAL_LINK_BUDGET
    assert budget == IDEAL_LINK_BUDGET


def test_validation_rejects_out_of_range_fields():
    with pytest.raises(ValueError):
        LinkBudget(loss_probability=MAX_LOSS + 0.01)
    with pytest.raises(ValueError):
        LinkBudget(loss_probability=-0.1)
    with pytest.raises(ValueError):
        LinkBudget(residency=0.0)
    with pytest.raises(ValueError):
        LinkBudget(residency=1.5)
    with pytest.raises(ValueError):
        LinkBudget(absence_seconds=-1e-3)


def test_retransmission_factor_is_expected_transmissions():
    budget = LinkBudget(loss_probability=0.5)
    assert budget.retransmission_factor() == pytest.approx(2.0)
    # the MAX_LOSS cap bounds the factor at 20 expected transmissions
    worst = LinkBudget(loss_probability=MAX_LOSS)
    assert worst.retransmission_factor() == pytest.approx(20.0)


def test_effective_interval_deflates_by_residency():
    budget = LinkBudget(residency=0.5)
    assert budget.effective_interval(0.020) == pytest.approx(0.010)


def test_with_estimated_loss_only_raises():
    budget = LinkBudget(loss_probability=0.3)
    assert budget.with_estimated_loss(0.1) == budget
    raised = budget.with_estimated_loss(0.6)
    assert raised.loss_probability == pytest.approx(0.6)
    # measured loss beyond the cap clamps instead of failing validation
    assert budget.with_estimated_loss(0.99).loss_probability == MAX_LOSS
    with pytest.raises(ValueError):
        budget.with_estimated_loss(1.5)


# --------------------------------------------------------- loss analytics

def test_worst_data_loss_matches_fec_tables():
    ber = 3e-4
    expected = 0.0
    for ptype in resolve_types(PAPER_TYPES):
        if ptype.max_payload <= 0:
            continue
        packet = BasebandPacket(ptype, payload=ptype.max_payload)
        expected = max(expected,
                       packet_error_probabilities(packet, ber).any)
    assert worst_data_loss(ber, PAPER_TYPES) == pytest.approx(expected)
    assert worst_data_loss(0.0, PAPER_TYPES) == 0.0


def test_worst_data_loss_composes_interference_sectionwise():
    base, interference = 3e-4, 1e-3
    combined = worst_data_loss(base, ("DH1",), interference_ber=interference)
    ptype = resolve_types(("DH1",))[0]
    packet = BasebandPacket(ptype, payload=ptype.max_payload)
    p_base = packet_error_probabilities(packet, base).any
    p_int = packet_error_probabilities(packet, interference).any
    assert combined == pytest.approx(1 - (1 - p_base) * (1 - p_int))


def test_compose_applies_margins_and_estimated_loss():
    budget = LinkBudget.compose(ber=0.0, packet_types=PAPER_TYPES,
                                estimated_loss=0.2, loss_margin=0.1,
                                residency=0.5, residency_margin=0.1,
                                absence_seconds=0.004)
    assert budget.loss_probability == pytest.approx(0.3)
    assert budget.residency == pytest.approx(0.4)
    assert budget.absence_seconds == pytest.approx(0.004)
    ideal = LinkBudget.compose(ber=0.0, packet_types=PAPER_TYPES)
    assert ideal.is_ideal


# ------------------------------------------------------ pessimistic merge

def test_worst_case_budget_merges_pessimistically():
    a = LinkBudget(loss_probability=0.2, residency=0.9,
                   absence_seconds=0.001)
    b = LinkBudget(loss_probability=0.1, residency=0.5,
                   absence_seconds=0.005)
    merged = worst_case_budget((a, b))
    assert merged.loss_probability == pytest.approx(0.2)
    assert merged.residency == pytest.approx(0.5)
    assert merged.absence_seconds == pytest.approx(0.005)
    # None entries are transparent; an all-None merge stays budget-less
    assert worst_case_budget((a, None)) == a
    assert worst_case_budget((None, None)) is None


# ------------------------------------------------------- bridge residency

def test_bridge_residency_duty_and_worst_absence():
    schedule = BridgeSchedule(period_slots=96, share_a=0.3, switch_slots=2)
    residency, absence = bridge_residency(schedule, ROLE_A)
    assert residency == pytest.approx(schedule.duty(ROLE_A))
    # the absence window spans B's slots plus both guard windows
    assert absence == pytest.approx(0.043125)
    residency_b, absence_b = bridge_residency(schedule, ROLE_B)
    assert residency + residency_b < 1.0  # switching costs both sides
    assert absence_b < absence  # B holds the larger share's complement
    # a full-time link has no absence
    assert not math.isnan(absence_b)
