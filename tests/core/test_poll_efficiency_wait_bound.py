"""Tests of poll efficiency (Eq. 4) and the Fig. 2 wait-bound algorithm."""

import pytest

from repro.baseband.segmentation import SegmentationPolicy
from repro.core import compute_wait_bound, min_poll_efficiency, poll_efficiency
from repro.core.poll_efficiency import _candidate_sizes, segments_needed
from repro.core.wait_bound import HigherPriorityStream

MS = 1e-3


class FecMidstreamPolicy(SegmentationPolicy):
    """Mid-stream segments prefer the FEC-protected DM3; final best fit.

    A legitimate policy whose segment plans mix types mid-stream: its
    breakpoints sit at mixed-capacity sums (e.g. DM3+DH3 = 304 bytes), not
    at multiples of any single capacity.
    """

    def choose_type(self, remaining):
        for ptype in self.by_capacity:
            if remaining <= ptype.max_payload:
                return ptype
        return next(t for t in self.by_capacity if t.name == "DM3")


def test_paper_minimum_poll_efficiency_is_144_bytes():
    # Section 4.1: the minimum poll efficiency of the GS flows is achieved by
    # a 144-byte packet sent in one DH3 packet.
    assert min_poll_efficiency(144, 176, ("DH1", "DH3")) == pytest.approx(144.0)


def test_poll_efficiency_single_segment_equals_size():
    assert poll_efficiency(150, ("DH1", "DH3")) == pytest.approx(150.0)
    assert segments_needed(150, ("DH1", "DH3")) == 1


def test_poll_efficiency_drops_after_capacity_breakpoint():
    # 183 bytes fit in one DH3; 184 bytes need DH3 + DH1
    assert poll_efficiency(183, ("DH1", "DH3")) == pytest.approx(183.0)
    assert poll_efficiency(184, ("DH1", "DH3")) == pytest.approx(92.0)


def test_min_poll_efficiency_candidate_set_matches_exhaustive():
    for (low, high) in [(100, 400), (144, 176), (27, 500), (180, 190)]:
        fast = min_poll_efficiency(low, high, ("DH1", "DH3"))
        slow = min_poll_efficiency(low, high, ("DH1", "DH3"), exhaustive=True)
        assert fast == pytest.approx(slow)


def test_candidate_sizes_include_mixed_capacity_sums():
    # regression: only multiples of single capacities were enumerated, so
    # breakpoints at mixed-type sums (DM3+DH3 = 304 -> step at 305) were
    # missed for policies whose plans mix types mid-stream
    policy = FecMidstreamPolicy(("DH1", "DM3", "DH3"))
    candidates = _candidate_sizes(250, 360, policy)
    assert 305 in candidates  # 121 + 183 + 1
    assert 332 in candidates  # 121 + 183 + 27 + 1


def test_min_poll_efficiency_true_minimum_for_midstream_mixing_policy():
    # with FecMidstreamPolicy the segment count steps from 2 to 3 at
    # 305 = DM3+DH3+1; the candidate set used to miss it and report
    # 324/3 = 108 instead of 305/3 ~ 101.67
    policy = FecMidstreamPolicy(("DH1", "DM3", "DH3"))
    fast = min_poll_efficiency(250, 360, policy=policy)
    slow = min_poll_efficiency(250, 360, policy=policy, exhaustive=True)
    assert fast == pytest.approx(slow)
    assert fast == pytest.approx(305 / 3)


def test_min_poll_efficiency_with_dh5_allowed():
    value = min_poll_efficiency(144, 176, ("DH1", "DH3", "DH5"))
    assert value == pytest.approx(144.0)


def test_min_poll_efficiency_validation():
    with pytest.raises(ValueError):
        min_poll_efficiency(0, 100)
    with pytest.raises(ValueError):
        min_poll_efficiency(200, 100)


# ---------------------------------------------------------------- wait bound

def test_highest_priority_flow_gets_max_transaction_time():
    result = compute_wait_bound(3.75 * MS, [])
    assert result.converged
    assert result.wait_bound == pytest.approx(3.75 * MS)


def test_paper_scenario_wait_bounds():
    """The Figure-4 streams: flow 1, pair (2,3), flow 4 (DESIGN.md values)."""
    m_t = 3.75 * MS
    stream1 = HigherPriorityStream(interval=16.36 * MS,
                                   max_transaction_time=2.5 * MS)
    stream23 = HigherPriorityStream(interval=16.36 * MS,
                                    max_transaction_time=3.75 * MS)
    u1 = compute_wait_bound(m_t, [])
    u2 = compute_wait_bound(m_t, [stream1])
    u3 = compute_wait_bound(m_t, [stream1, stream23])
    assert u1.wait_bound == pytest.approx(3.75 * MS)
    assert u2.wait_bound == pytest.approx(6.25 * MS)
    assert u3.wait_bound == pytest.approx(10.0 * MS)
    assert all(r.converged for r in (u1, u2, u3))


def test_wait_bound_grows_with_more_higher_priority_flows():
    m_t = 3.75 * MS
    streams = [HigherPriorityStream(interval=20 * MS, max_transaction_time=2.5 * MS)
               for _ in range(5)]
    bounds = [compute_wait_bound(m_t, streams[:k]).wait_bound for k in range(6)]
    assert all(b2 >= b1 for b1, b2 in zip(bounds, bounds[1:]))


def test_wait_bound_aborts_when_exceeding_own_interval():
    m_t = 3.75 * MS
    heavy = [HigherPriorityStream(interval=4 * MS, max_transaction_time=3.75 * MS)
             for _ in range(3)]
    result = compute_wait_bound(m_t, heavy, own_interval=10 * MS)
    assert not result.converged
    assert result.wait_bound > 10 * MS


def test_wait_bound_ceil_effect_with_short_higher_priority_interval():
    # a higher-priority stream polling faster than u accumulates several polls
    m_t = 3.75 * MS
    fast = HigherPriorityStream(interval=3 * MS, max_transaction_time=2.5 * MS)
    result = compute_wait_bound(m_t, [fast], own_interval=60 * MS)
    # iteration: 3.75 -> 3.75 + 2.5*ceil(3.75/3)=8.75 -> 3.75+2.5*3=11.25
    # -> 3.75+2.5*4=13.75 -> 3.75+2.5*5=16.25 -> 3.75+2.5*6=18.75 ->
    # 3.75+2.5*7=21.25 -> ... converges when ceil stops growing
    assert result.converged
    assert result.wait_bound > 8 * MS


def test_wait_bound_input_validation():
    with pytest.raises(ValueError):
        compute_wait_bound(0, [])
    with pytest.raises(ValueError):
        compute_wait_bound(1.0, [], own_interval=0)
    with pytest.raises(ValueError):
        HigherPriorityStream(interval=-1, max_transaction_time=1)


def test_wait_bound_overloaded_set_diverges_without_crash():
    # regression: with no own_interval and sum(s_max_j / t_j) >= 1 the
    # iterate used to overflow to infinity and math.ceil raised
    # OverflowError; now the overload is detected up front
    from repro.core.wait_bound import UNBOUNDED_WAIT
    m_t = 3.75 * MS
    overloaded = [HigherPriorityStream(interval=5 * MS,
                                       max_transaction_time=2.5 * MS)
                  for _ in range(2)]
    result = compute_wait_bound(m_t, overloaded)
    assert not result.converged
    assert result.wait_bound == UNBOUNDED_WAIT
    assert result.iterations == 0

    # the Hypothesis falsifying example, spelled out
    intervals = [0.0625, 0.005, 0.005, 0.005, 0.005]
    streams = [HigherPriorityStream(interval=i, max_transaction_time=2.5 * MS)
               for i in intervals]
    result = compute_wait_bound(m_t, streams)
    assert not result.converged
    assert result.wait_bound == UNBOUNDED_WAIT


def test_wait_bound_near_saturation_still_converges():
    # utilization just below 1 must still run the real iteration
    m_t = 1.0 * MS
    streams = [HigherPriorityStream(interval=10 * MS,
                                    max_transaction_time=4.9 * MS),
               HigherPriorityStream(interval=10 * MS,
                                    max_transaction_time=4.9 * MS)]
    result = compute_wait_bound(m_t, streams)
    assert result.converged
    assert result.wait_bound >= m_t
