"""Tests of the fixed-interval and variable-interval poll planners."""

import pytest

from repro.core import FixedIntervalPlanner, PlannerConfig, ServedSegment, VariableIntervalPlanner
from repro.piconet.flows import DOWNLINK, UPLINK


def make_config(interval=16.0, rate=9.0, direction=UPLINK):
    return PlannerConfig(flow_id=1, interval=interval, rate=rate,
                         direction=direction)


def served(packet_id=1, last=True, size=144, arrival=None):
    return ServedSegment(hl_packet_id=packet_id, is_last_segment=last,
                         hl_packet_size=size, hl_arrival_time=arrival)


def test_planner_config_validation():
    with pytest.raises(ValueError):
        PlannerConfig(1, interval=0, rate=1)
    with pytest.raises(ValueError):
        PlannerConfig(1, interval=1, rate=0)
    with pytest.raises(ValueError):
        PlannerConfig(1, interval=1, rate=1, direction="weird")


def test_fixed_planner_keeps_rigid_spacing():
    planner = FixedIntervalPlanner(make_config(interval=10.0), start_time=0.0)
    assert planner.is_due(0.0)
    planner.record_poll(0.0, served())
    assert planner.planned_time() == pytest.approx(10.0)
    # even an unsuccessful, delayed poll does not shift the schedule
    planner.record_poll(13.0, None)
    assert planner.planned_time() == pytest.approx(20.0)
    assert planner.unsuccessful_polls == 1


def test_fixed_planner_is_due_ignores_queue_state():
    planner = FixedIntervalPlanner(make_config(direction=DOWNLINK))
    assert planner.is_due(0.0, has_data=False)


def test_variable_planner_unsuccessful_poll_postpones_from_actual_time():
    planner = VariableIntervalPlanner(make_config(interval=10.0), start_time=0.0)
    planner.record_poll(3.0, None)       # executed late, no data
    assert planner.planned_time() == pytest.approx(13.0)


def test_variable_planner_unsuccessful_postpone_can_be_disabled():
    planner = VariableIntervalPlanner(make_config(interval=10.0), start_time=0.0,
                                      postpone_after_unsuccessful=False)
    planner.record_poll(3.0, None)
    assert planner.planned_time() == pytest.approx(10.0)


def test_variable_planner_packet_size_postpone():
    # interval = eta_min / R = 144/9 = 16; a 176-byte packet postpones the
    # next poll to first_planned + 176/9
    planner = VariableIntervalPlanner(make_config(interval=16.0, rate=9.0),
                                      start_time=0.0)
    planner.record_poll(0.5, served(packet_id=1, last=True, size=176))
    assert planner.planned_time() == pytest.approx(176 / 9.0)


def test_variable_planner_minimum_size_packet_reduces_to_fixed_interval():
    # paper consistency remark: for the minimum-efficiency packet size the
    # postponement equals t_i
    planner = VariableIntervalPlanner(make_config(interval=16.0, rate=9.0),
                                      start_time=0.0)
    planner.record_poll(0.0, served(size=144))
    assert planner.planned_time() == pytest.approx(144 / 9.0)
    assert planner.planned_time() == pytest.approx(planner.interval)


def test_variable_planner_multisegment_packet_paced_at_interval():
    planner = VariableIntervalPlanner(make_config(interval=16.0, rate=9.0),
                                      start_time=0.0)
    planner.record_poll(0.0, served(packet_id=7, last=False, size=288))
    assert planner.planned_time() == pytest.approx(16.0)
    planner.record_poll(16.0, served(packet_id=7, last=True, size=288))
    # postponed relative to the first poll of the packet: 288/9 = 32
    assert planner.planned_time() == pytest.approx(32.0)


def test_variable_planner_downlink_skip_when_queue_empty():
    planner = VariableIntervalPlanner(make_config(direction=DOWNLINK),
                                      start_time=0.0)
    assert not planner.is_due(100.0, has_data=False)
    assert planner.is_due(100.0, has_data=True)


def test_variable_planner_skip_disabled_still_due():
    planner = VariableIntervalPlanner(make_config(direction=DOWNLINK),
                                      start_time=0.0,
                                      skip_when_no_downlink_data=False)
    assert planner.is_due(100.0, has_data=False)


def test_variable_planner_uplink_never_skips_on_unknown_data():
    planner = VariableIntervalPlanner(make_config(direction=UPLINK), start_time=0.0)
    assert planner.is_due(0.0, has_data=None)
    assert planner.is_due(0.0, has_data=False)


def test_variable_planner_dormant_stream_bases_plan_on_arrival_time():
    # the stream was dormant (planned time stale); a packet arrives at t=50
    # and is served at t=51: the next poll must be planned from the arrival,
    # not from the stale planned time, to preserve the polling cadence
    planner = VariableIntervalPlanner(make_config(interval=16.0, rate=9.0,
                                                  direction=DOWNLINK),
                                      start_time=0.0)
    planner.record_poll(51.0, served(packet_id=3, size=144, arrival=50.0))
    assert planner.planned_time() == pytest.approx(50.0 + 16.0)


def test_variable_planner_poll_spacing_never_below_interval_when_busy():
    planner = VariableIntervalPlanner(make_config(interval=16.0, rate=9.0),
                                      start_time=0.0)
    planned_times = [planner.planned_time()]
    time = 0.0
    for packet_id in range(1, 30):
        time = max(time, planner.planned_time())
        planner.record_poll(time, served(packet_id=packet_id, size=144))
        planned_times.append(planner.planned_time())
    gaps = [b - a for a, b in zip(planned_times, planned_times[1:])]
    assert all(gap >= planner.interval - 1e-9 for gap in gaps)
