"""Tests of the GuaranteedServiceManager (rate negotiation, planners, export)."""

import pytest

from repro.core import GuaranteedServiceManager, cbr_tspec
from repro.core.planning import FixedIntervalPlanner, VariableIntervalPlanner
from repro.piconet.flows import DOWNLINK, FlowSpec, GS, UPLINK

M_T = 6 * 625e-6


def gs_spec(flow_id, slave, direction=UPLINK):
    return FlowSpec(flow_id, slave=slave, direction=direction, traffic_class=GS)


@pytest.fixture
def tspec():
    return cbr_tspec(0.020, 144, 176)


def test_add_flow_requires_exactly_one_of_rate_and_bound(tspec):
    manager = GuaranteedServiceManager(M_T)
    with pytest.raises(ValueError):
        manager.add_flow(gs_spec(1, 1), tspec)
    with pytest.raises(ValueError):
        manager.add_flow(gs_spec(1, 1), tspec, rate=9000.0, delay_bound=0.04)


def test_add_flow_rejects_non_gs_spec(tspec):
    manager = GuaranteedServiceManager(M_T)
    be_spec = FlowSpec(1, slave=1, direction=UPLINK, traffic_class="BE")
    with pytest.raises(ValueError):
        manager.add_flow(be_spec, tspec, rate=9000.0)


def test_rate_based_admission_and_derived_quantities(tspec):
    manager = GuaranteedServiceManager(M_T)
    setup = manager.add_flow(gs_spec(1, 1), tspec, rate=9000.0)
    assert setup.accepted
    assert setup.eta_min == pytest.approx(144.0)
    assert setup.interval == pytest.approx(144.0 / 9000.0)
    assert manager.priority_of(1) == 1
    assert manager.wait_bound_of(1) == pytest.approx(M_T)
    terms = manager.error_terms_for(1)
    assert terms.c_bytes == pytest.approx(144.0)
    assert terms.d_seconds == pytest.approx(M_T)


def test_delay_bound_negotiation_meets_target(tspec):
    manager = GuaranteedServiceManager(M_T)
    target = 0.030
    setup = manager.add_flow(gs_spec(1, 1), tspec, delay_bound=target)
    assert setup.accepted
    assert manager.delay_bound_for(1) <= target + 1e-9
    assert setup.rate >= tspec.r


def test_delay_bound_negotiation_loose_target_uses_token_rate(tspec):
    manager = GuaranteedServiceManager(M_T)
    setup = manager.add_flow(gs_spec(1, 1), tspec, delay_bound=0.5)
    assert setup.accepted
    assert setup.rate == pytest.approx(tspec.r)


def test_infeasible_delay_bound_rejected(tspec):
    manager = GuaranteedServiceManager(M_T)
    # tighter than the rate-independent deviation (u >= 3.75 ms)
    setup = manager.add_flow(gs_spec(1, 1), tspec, delay_bound=0.003)
    assert not setup.accepted
    assert manager.admitted_flow_ids() == []


def test_duplicate_flow_id_rejected(tspec):
    manager = GuaranteedServiceManager(M_T)
    manager.add_flow(gs_spec(1, 1), tspec, rate=9000.0)
    with pytest.raises(ValueError):
        manager.add_flow(gs_spec(1, 1), tspec, rate=9000.0)


def test_planner_type_follows_configuration(tspec):
    variable = GuaranteedServiceManager(M_T, variable_interval=True)
    variable.add_flow(gs_spec(1, 1), tspec, rate=9000.0)
    assert isinstance(variable.planner_for(1), VariableIntervalPlanner)
    fixed = GuaranteedServiceManager(M_T, variable_interval=False)
    fixed.add_flow(gs_spec(1, 1), tspec, rate=9000.0)
    assert isinstance(fixed.planner_for(1), FixedIntervalPlanner)


def test_piggybacked_pair_shares_one_planner(tspec):
    manager = GuaranteedServiceManager(M_T)
    manager.add_flow(gs_spec(2, 2, DOWNLINK), tspec, rate=9000.0)
    manager.add_flow(gs_spec(3, 2, UPLINK), tspec, rate=9000.0)
    streams = manager.streams
    assert len(streams) == 1
    assert set(streams[0].flow_ids) == {2, 3}
    assert manager.priority_of(2) == manager.priority_of(3) == 1


def test_due_streams_ordered_by_priority(tspec):
    manager = GuaranteedServiceManager(M_T)
    for flow_id, slave in [(1, 1), (2, 2), (3, 3)]:
        manager.add_flow(gs_spec(flow_id, slave), tspec, rate=9000.0)
    due = manager.due_streams(now=0.0)
    assert [stream.priority for stream, _ in due] == [1, 2, 3]


def test_due_streams_respects_downlink_skip(tspec):
    manager = GuaranteedServiceManager(M_T)
    manager.add_flow(gs_spec(1, 1, DOWNLINK), tspec, rate=9000.0)
    assert manager.due_streams(0.0, downlink_has_data=lambda fid: False) == []
    due = manager.due_streams(0.0, downlink_has_data=lambda fid: True)
    assert len(due) == 1


def test_record_poll_advances_planner(tspec):
    manager = GuaranteedServiceManager(M_T)
    manager.add_flow(gs_spec(1, 1), tspec, rate=9000.0)
    planner = manager.planner_for(1)
    before = planner.planned_time()
    manager.record_poll(1, actual_time=0.001, served=None)
    assert planner.planned_time() > before


def test_existing_planner_state_preserved_when_new_flow_added(tspec):
    manager = GuaranteedServiceManager(M_T)
    manager.add_flow(gs_spec(1, 1), tspec, rate=9000.0)
    manager.record_poll(1, actual_time=0.0, served=None)
    planned = manager.planner_for(1).planned_time()
    manager.add_flow(gs_spec(2, 2), tspec, rate=9000.0)
    assert manager.planner_for(1).planned_time() == pytest.approx(planned)


def test_next_planned_poll(tspec):
    manager = GuaranteedServiceManager(M_T)
    assert manager.next_planned_poll() is None
    manager.add_flow(gs_spec(1, 1), tspec, rate=9000.0, start_time=2.0)
    assert manager.next_planned_poll() == pytest.approx(2.0)


# ------------------------------------------------- budget-aware admission

from repro.core.link_budget import LinkBudget  # noqa: E402


def budgeted_manager(budgets):
    return GuaranteedServiceManager(M_T, link_budgets=budgets)


def test_lossy_budget_raises_negotiated_rate(tspec):
    oblivious = GuaranteedServiceManager(M_T)
    lossy = budgeted_manager(
        {(1, UPLINK): LinkBudget(loss_probability=0.5)})
    plain = oblivious.add_flow(gs_spec(1, 1), tspec, delay_bound=0.040)
    aware = lossy.add_flow(gs_spec(1, 1), tspec, delay_bound=0.040)
    assert plain.accepted and aware.accepted
    # the inflated C term (expected retransmissions) demands a higher rate
    assert aware.rate > plain.rate
    plain_terms = oblivious.error_terms_for(1)
    aware_terms = lossy.error_terms_for(1)
    assert aware_terms.c_bytes == pytest.approx(plain_terms.c_bytes * 2.0)


def test_absence_enters_wait_bound_and_d_term(tspec):
    absence = 0.004
    manager = budgeted_manager(
        {(1, UPLINK): LinkBudget(absence_seconds=absence)})
    setup = manager.add_flow(gs_spec(1, 1), tspec, rate=9000.0)
    assert setup.accepted
    assert manager.wait_bound_of(1) == pytest.approx(M_T + absence)
    terms = manager.error_terms_for(1)
    assert terms.d_seconds == pytest.approx(M_T + absence + absence)


def test_residency_deflates_planner_interval(tspec):
    manager = budgeted_manager({(1, UPLINK): LinkBudget(residency=0.5)})
    setup = manager.add_flow(gs_spec(1, 1), tspec, rate=9000.0)
    assert setup.accepted
    planner = manager.planner_for(1)
    assert planner.config.interval == pytest.approx(setup.interval * 0.5)


def test_observe_link_feeds_flagging(tspec):
    manager = budgeted_manager(
        {(1, UPLINK): LinkBudget(loss_probability=0.1)})
    manager.add_flow(gs_spec(1, 1), tspec, rate=9000.0)
    assert manager.measured_loss(1, UPLINK) is None
    assert manager.flagged_flows() == []
    for _ in range(100):
        manager.observe_link(1, UPLINK, error=True)
    assert manager.link_observations(1, UPLINK) == 100
    assert manager.measured_loss(1, UPLINK) > 0.5
    assert manager.flagged_flows() == [1]
    # a link tracking its budget is never flagged
    manager.add_flow(gs_spec(2, 2), tspec, rate=9000.0)
    for _ in range(100):
        manager.observe_link(2, UPLINK, error=False)
    assert manager.flagged_flows() == [1]


def test_renegotiate_flow_raises_budget_and_rate(tspec):
    manager = budgeted_manager(
        {(1, UPLINK): LinkBudget(loss_probability=0.0)})
    first = manager.add_flow(gs_spec(1, 1), tspec, delay_bound=0.040)
    assert first.accepted
    for _ in range(200):
        manager.observe_link(1, UPLINK, error=True)
        manager.observe_link(1, UPLINK, error=False)
    assert manager.flagged_flows() == [1]
    renewed = manager.renegotiate_flow(1, now=1.0)
    assert renewed.accepted
    assert renewed.rate > first.rate
    # the raised budget sticks on the link
    raised = manager.budget_for(1, UPLINK)
    assert raised.loss_probability == pytest.approx(
        manager.measured_loss(1, UPLINK))


def test_renegotiate_rejection_leaves_flow_removed(tspec):
    manager = budgeted_manager({(1, UPLINK): LinkBudget()})
    setup = manager.add_flow(gs_spec(1, 1), tspec, delay_bound=0.040)
    assert setup.accepted
    # a link measuring near-total loss cannot be re-admitted at any rate
    for _ in range(400):
        manager.observe_link(1, UPLINK, error=True)
    renewed = manager.renegotiate_flow(1, now=1.0)
    assert not renewed.accepted
    assert manager.streams == []
    assert manager.next_planned_poll() is None
    with pytest.raises(KeyError):
        manager.renegotiate_flow(1)


def test_unknown_renegotiation_raises(tspec):
    manager = GuaranteedServiceManager(M_T)
    with pytest.raises(KeyError):
        manager.renegotiate_flow(9)
