"""Tests of the exported error terms and the Fig. 3 admission control."""

import pytest

from repro.core import (
    AdmissionController,
    ErrorTerms,
    GSFlowRequest,
    accumulate_error_terms,
    cbr_tspec,
    export_error_terms,
)
from repro.core.admission import max_admissible_rate
from repro.piconet.flows import DOWNLINK, UPLINK

MS = 1e-3
M_T = 6 * 625e-6   # DH3 both ways


def make_request(flow_id, slave, direction=UPLINK, rate=8800.0):
    tspec = cbr_tspec(0.020, 144, 176)
    return GSFlowRequest(flow_id=flow_id, slave=slave, direction=direction,
                         tspec=tspec, rate=rate, eta_min=144.0,
                         max_segment_slots=3)


# ------------------------------------------------------------- error terms

def test_error_terms_validation_and_deviation():
    terms = ErrorTerms(c_bytes=144, d_seconds=0.00375)
    assert terms.deviation(8800) == pytest.approx(144 / 8800 + 0.00375)
    with pytest.raises(ValueError):
        ErrorTerms(-1, 0)
    with pytest.raises(ValueError):
        terms.deviation(0)


def test_export_error_terms_matches_eq7():
    terms = export_error_terms(eta_min=144, wait_bound=0.00625)
    assert terms.c_bytes == 144
    assert terms.d_seconds == 0.00625


def test_error_terms_accumulate_along_path():
    total = accumulate_error_terms([ErrorTerms(100, 0.001), ErrorTerms(50, 0.002)])
    assert total.c_bytes == 150
    assert total.d_seconds == pytest.approx(0.003)


# --------------------------------------------------------------- admission

def test_single_flow_admitted_with_highest_priority():
    controller = AdmissionController(M_T)
    result = controller.request_admission(make_request(1, slave=1))
    assert result.accepted
    stream = result.stream_for(1)
    assert stream.priority == 1
    assert stream.wait_bound == pytest.approx(M_T)


def test_request_validation():
    tspec = cbr_tspec(0.020, 144, 176)
    with pytest.raises(ValueError):
        GSFlowRequest(1, 1, UPLINK, tspec, rate=100.0, eta_min=144)   # below r
    with pytest.raises(ValueError):
        GSFlowRequest(1, 1, "sideways", tspec, rate=9000.0, eta_min=144)
    with pytest.raises(ValueError):
        GSFlowRequest(1, 1, UPLINK, tspec, rate=9000.0, eta_min=144,
                      max_segment_slots=2)


def test_duplicate_flow_rejected():
    controller = AdmissionController(M_T)
    assert controller.request_admission(make_request(1, 1)).accepted
    assert not controller.request_admission(make_request(1, 1)).accepted


def test_rate_needing_interval_below_transaction_time_rejected():
    controller = AdmissionController(M_T)
    # t_i = 144 / rate < 3.75 ms  =>  rate > 38.4 kB/s
    result = controller.request_admission(make_request(1, 1, rate=50_000.0))
    assert not result.accepted


def test_figure4_priorities_and_wait_bounds():
    """The DESIGN.md interpretation of the Figure-4 GS flows."""
    controller = AdmissionController(M_T)
    controller.request_admission(make_request(1, slave=1, direction=UPLINK))
    controller.request_admission(make_request(2, slave=2, direction=DOWNLINK))
    controller.request_admission(make_request(3, slave=2, direction=UPLINK))
    result = controller.request_admission(make_request(4, slave=3, direction=UPLINK))
    assert result.accepted
    streams = result.streams
    assert len(streams) == 3      # flows 2 and 3 share one stream
    paired = [s for s in streams if s.secondary is not None]
    assert len(paired) == 1 and set(paired[0].flow_ids) == {2, 3}
    bounds = {tuple(sorted(s.flow_ids)): s.wait_bound for s in streams}
    assert bounds[(1,)] == pytest.approx(3.75 * MS)
    assert bounds[(2, 3)] == pytest.approx(6.25 * MS)
    assert bounds[(4,)] == pytest.approx(10.0 * MS)


def test_every_accepted_stream_satisfies_eq9():
    controller = AdmissionController(M_T)
    for flow_id, slave in [(1, 1), (2, 2), (3, 2), (4, 3), (5, 4), (6, 5)]:
        controller.request_admission(make_request(flow_id, slave))
    for stream in controller.streams:
        assert stream.wait_bound <= stream.interval + 1e-12
        assert stream.rate <= max_admissible_rate(
            stream.primary.eta_min, stream.wait_bound) + 1e-9


def test_piggybacking_accepts_more_flows_than_naive():
    rate = 14_000.0
    def admit_all(piggyback):
        controller = AdmissionController(M_T, piggyback_aware=piggyback)
        accepted = 0
        flow_id = 1
        for slave in range(1, 8):
            for direction in (UPLINK, DOWNLINK):
                result = controller.request_admission(
                    make_request(flow_id, slave, direction, rate=rate))
                accepted += int(result.accepted)
                flow_id += 1
        return accepted

    assert admit_all(True) > admit_all(False)


def test_rejected_request_leaves_state_unchanged():
    controller = AdmissionController(M_T)
    for flow_id in range(1, 4):
        controller.request_admission(make_request(flow_id, slave=flow_id,
                                                  rate=12_800.0))
    streams_before = {tuple(s.flow_ids): s.priority for s in controller.streams}
    # an aggressive request that cannot be admitted
    result = controller.request_admission(make_request(9, slave=4, rate=30_000.0))
    assert not result.accepted
    streams_after = {tuple(s.flow_ids): s.priority for s in controller.streams}
    assert streams_before == streams_after


def test_evaluate_does_not_commit():
    controller = AdmissionController(M_T)
    result = controller.evaluate(make_request(1, 1))
    assert result.accepted
    assert controller.streams == []
    assert controller.priority_of(1) is None


def test_remove_flow_recomputes_priorities():
    controller = AdmissionController(M_T)
    for flow_id, slave in [(1, 1), (2, 2), (3, 3)]:
        controller.request_admission(make_request(flow_id, slave))
    controller.remove_flow(1)
    assert sorted(r.flow_id for r in controller.accepted_requests) == [2, 3]
    assert sorted(s.priority for s in controller.streams) == [1, 2]
    with pytest.raises(KeyError):
        controller.remove_flow(99)


def test_wait_bound_lookup():
    controller = AdmissionController(M_T)
    controller.request_admission(make_request(1, 1))
    assert controller.wait_bound_of(1) == pytest.approx(M_T)
    assert controller.wait_bound_of(42) is None
