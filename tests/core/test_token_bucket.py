"""Tests of TSpec and the operational token bucket."""

import pytest

from repro.core import TSpec, TokenBucket, cbr_tspec
from repro.core.token_bucket import check_trace_conformance


def test_tspec_validation():
    with pytest.raises(ValueError):
        TSpec(p=100, r=200, b=500, m=10, M=100)      # p < r
    with pytest.raises(ValueError):
        TSpec(p=200, r=100, b=50, m=10, M=100)       # b < M
    with pytest.raises(ValueError):
        TSpec(p=200, r=100, b=500, m=200, M=100)     # m > M
    with pytest.raises(ValueError):
        TSpec(p=200, r=0, b=500, m=10, M=100)        # r <= 0


def test_paper_cbr_tspec_values():
    """Section 4.1: p = r = 8.8 kB/s, b = M = 176 B, m = 144 B."""
    tspec = cbr_tspec(0.020, 144, 176)
    assert tspec.r == pytest.approx(8800.0)
    assert tspec.p == pytest.approx(8800.0)
    assert tspec.b == 176
    assert tspec.M == 176
    assert tspec.m == 144


def test_arrival_curve_is_min_of_two_lines():
    tspec = TSpec(p=1000, r=100, b=500, m=10, M=100)
    assert tspec.arrival_curve(0) == 100          # M
    assert tspec.arrival_curve(0.1) == pytest.approx(200)   # M + p t wins early
    assert tspec.arrival_curve(10) == pytest.approx(1500)   # b + r t wins later
    with pytest.raises(ValueError):
        tspec.arrival_curve(-1)


def test_scaled_tspec():
    tspec = cbr_tspec(0.020, 144, 176)
    double = tspec.scaled(2.0)
    assert double.r == pytest.approx(2 * tspec.r)
    assert double.M == tspec.M


def test_token_bucket_accepts_conformant_cbr():
    tspec = cbr_tspec(0.020, 144, 176)
    bucket = TokenBucket(tspec)
    times = [i * 0.020 for i in range(50)]
    assert all(bucket.consume(176, t) for t in times)


def test_token_bucket_rejects_burst_beyond_bucket():
    tspec = cbr_tspec(0.020, 144, 176)
    bucket = TokenBucket(tspec)
    assert bucket.consume(176, 0.0)
    # a second maximum-size packet at the same instant exceeds the bucket
    assert not bucket.consume(176, 0.0)
    # but it becomes conformant once tokens have refilled
    assert bucket.consume(176, 0.020)


def test_token_bucket_minimum_policed_unit():
    tspec = TSpec(p=1000, r=1000, b=200, m=100, M=200)
    bucket = TokenBucket(tspec)
    assert bucket.consume(10, 0.0)      # counted as 100 bytes
    assert bucket.consume(10, 0.0)      # another 100 -> bucket empty
    assert not bucket.consume(10, 0.0)


def test_token_bucket_rejects_oversized_packet():
    tspec = cbr_tspec(0.020, 144, 176)
    bucket = TokenBucket(tspec)
    assert not bucket.conforms(200, 0.0)


def test_token_bucket_time_cannot_go_backwards():
    tspec = cbr_tspec(0.020, 144, 176)
    bucket = TokenBucket(tspec)
    bucket.consume(144, 1.0)
    with pytest.raises(ValueError):
        bucket.conforms(144, 0.5)


def test_trace_conformance_reports_violations():
    tspec = cbr_tspec(0.020, 144, 176)
    good_trace = [(i * 0.020, 160) for i in range(10)]
    assert check_trace_conformance(tspec, good_trace) == []
    bad_trace = [(0.0, 176), (0.001, 176), (0.002, 176)]
    assert check_trace_conformance(tspec, bad_trace) == [1, 2]


def test_token_bucket_tolerance_consume_never_goes_negative():
    # regression: a packet accepted via the 1e-9 conformance tolerance used
    # to push the token count epsilon below zero, and the deficit persisted
    tspec = TSpec(p=1000.0, r=1000.0, b=176.0, m=144, M=176)
    bucket = TokenBucket(tspec, full=False)
    # refill to just under one packet's worth of tokens: 176 * (1 - 2**-53)
    shortfall = 176.0 * (1.0 - 2.0 ** -53)
    bucket._refill(shortfall / tspec.r)
    assert bucket.consume(176, shortfall / tspec.r)
    assert bucket.tokens >= 0.0
    # after a refill long enough for exactly one more packet, the next
    # packet must still conform — a lingering deficit would reject it
    now = shortfall / tspec.r + 176.0 / tspec.r
    assert bucket.consume(176, now)
    assert bucket.tokens >= 0.0
