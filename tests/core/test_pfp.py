"""Tests of the Predictive Fair Poller (GS precedence, BE fairness, prediction)."""

import pytest

from repro.core import FixedIntervalGSPoller, GuaranteedServiceManager, PredictiveFairPoller, cbr_tspec
from repro.piconet import FlowSpec, Piconet
from repro.piconet.flows import BE, DOWNLINK, GS, UPLINK
from repro.schedulers.base import KIND_BE, KIND_GS
from repro.traffic.sources import CBRSource

M_T = 6 * 625e-6


def build_gs_be_piconet():
    """One GS uplink flow on slave 1, BE uplink flows on slaves 2 and 3."""
    piconet = Piconet()
    for _ in range(3):
        piconet.add_slave()
    piconet.add_flow(FlowSpec(1, slave=1, direction=UPLINK, traffic_class=GS))
    piconet.add_flow(FlowSpec(2, slave=2, direction=UPLINK, traffic_class=BE))
    piconet.add_flow(FlowSpec(3, slave=3, direction=UPLINK, traffic_class=BE))
    manager = GuaranteedServiceManager(M_T)
    setup = manager.add_flow(piconet.flow_state(1).spec, cbr_tspec(0.020, 144, 176),
                             delay_bound=0.030)
    assert setup.accepted
    poller = PredictiveFairPoller(manager)
    piconet.attach_poller(poller)
    return piconet, manager, poller


def test_gs_poll_selected_when_due():
    piconet, _manager, poller = build_gs_be_piconet()
    plan = poller.select(piconet.env.now)
    assert plan is not None
    assert plan.kind == KIND_GS
    assert plan.slave == 1
    assert plan.gs_flow_id == 1


def test_availability_threshold_validation():
    manager = GuaranteedServiceManager(M_T)
    with pytest.raises(ValueError):
        PredictiveFairPoller(manager, availability_threshold=2.0)


def test_be_capacity_divided_fairly_between_equal_slaves():
    piconet, _manager, poller = build_gs_be_piconet()
    CBRSource(piconet, 1, 0.020, (144, 176)).start()
    # both BE slaves offer far more than the residual capacity can carry
    CBRSource(piconet, 2, 0.004, 176).start()
    CBRSource(piconet, 3, 0.004, 176).start()
    piconet.run(2.0)
    t2 = piconet.slave_throughput_bps(2)
    t3 = piconet.slave_throughput_bps(3)
    assert t2 == pytest.approx(t3, rel=0.1)
    report = {row["slave"]: row for row in poller.fairness_report()}
    assert report[2]["served_slots"] == pytest.approx(report[3]["served_slots"],
                                                      rel=0.1)


def test_fair_share_weights_bias_allocation():
    piconet = Piconet()
    for _ in range(2):
        piconet.add_slave()
    piconet.add_flow(FlowSpec(1, slave=1, direction=UPLINK, traffic_class=BE))
    piconet.add_flow(FlowSpec(2, slave=2, direction=UPLINK, traffic_class=BE))
    manager = GuaranteedServiceManager(M_T)
    poller = PredictiveFairPoller(manager, fair_shares={1: 3.0, 2: 1.0})
    piconet.attach_poller(poller)
    CBRSource(piconet, 1, 0.002, 176).start()
    CBRSource(piconet, 2, 0.002, 176).start()
    piconet.run(2.0)
    assert piconet.slave_throughput_bps(1) > 2.0 * piconet.slave_throughput_bps(2)


def test_idle_be_slave_gets_few_polls_after_prediction_learns():
    piconet = Piconet()
    for _ in range(2):
        piconet.add_slave()
    piconet.add_flow(FlowSpec(1, slave=1, direction=UPLINK, traffic_class=BE))
    piconet.add_flow(FlowSpec(2, slave=2, direction=UPLINK, traffic_class=BE))
    manager = GuaranteedServiceManager(M_T)
    poller = PredictiveFairPoller(manager)
    piconet.attach_poller(poller)
    CBRSource(piconet, 1, 0.010, 176).start()   # slave 2 stays silent
    piconet.run(2.0)
    report = {row["slave"]: row["served_slots"] for row in poller.fairness_report()}
    assert report[1] > 3 * report[2]


def test_gs_delay_bound_met_in_presence_of_be_load():
    piconet, manager, _poller = build_gs_be_piconet()
    CBRSource(piconet, 1, 0.020, (144, 176)).start()
    CBRSource(piconet, 2, 0.003, 176).start()
    CBRSource(piconet, 3, 0.003, 176).start()
    piconet.run(5.0)
    state = piconet.flow_state(1)
    assert state.delivered_packets > 200
    assert state.delays.maximum <= 0.030 + 1e-9
    assert manager.delay_bound_for(1) <= 0.030 + 1e-9


def test_fixed_interval_gs_poller_requires_fixed_manager():
    variable_manager = GuaranteedServiceManager(M_T, variable_interval=True)
    with pytest.raises(ValueError):
        FixedIntervalGSPoller(variable_manager)
    fixed_manager = GuaranteedServiceManager(M_T, variable_interval=False)
    poller = FixedIntervalGSPoller(fixed_manager)
    assert poller.name == "fixed-interval-gs"


def test_gs_poll_marks_unsuccessful_when_no_data():
    piconet, manager, poller = build_gs_be_piconet()
    # no traffic at all: the first GS poll finds nothing
    piconet.run(0.05)
    planner = manager.planner_for(1)
    assert planner.unsuccessful_polls >= 1
    assert piconet.gs_polls_without_data >= 1
