"""Tests of the traffic sources and the measurement sink."""

import random

import pytest

from repro.core import cbr_tspec
from repro.core.token_bucket import check_trace_conformance
from repro.piconet import FlowSpec, Piconet
from repro.piconet.flows import BE, UPLINK
from repro.schedulers.base import KIND_BE, Poller
from repro.traffic import CBRSource, DelayThroughputSink, OnOffSource, PoissonSource, TraceSource


class ServeSlaveOne(Poller):
    def select(self, now):
        return self.build_plan_for_slave(1, kind=KIND_BE)


def make_piconet():
    piconet = Piconet()
    piconet.add_slave()
    piconet.add_flow(FlowSpec(1, slave=1, direction=UPLINK, traffic_class=BE))
    piconet.attach_poller(ServeSlaveOne())
    return piconet


def test_cbr_source_rate_and_count():
    piconet = make_piconet()
    source = CBRSource(piconet, 1, interval=0.020, size=176)
    source.start()
    piconet.run(1.0)
    assert source.packets_generated == pytest.approx(50, abs=1)
    assert source.bytes_generated == source.packets_generated * 176


def test_cbr_source_from_rate():
    piconet = make_piconet()
    source = CBRSource.from_rate(piconet, 1, rate_bps=41_600, size=176)
    assert source.interval == pytest.approx(176 * 8 / 41_600)


def test_cbr_source_uniform_sizes_within_range():
    piconet = make_piconet()
    source = CBRSource(piconet, 1, 0.010, (144, 176), rng=random.Random(2))
    source.start()
    piconet.run(1.0)
    sizes = {source.next_size() for _ in range(200)}
    assert min(sizes) >= 144 and max(sizes) <= 176


def test_gs_cbr_source_conforms_to_its_tspec():
    """The Figure-4 GS sources must conform to the TSpec they advertise."""
    piconet = make_piconet()
    trace = []
    original_offer = piconet.offer_packet

    def recording_offer(flow_id, size):
        trace.append((piconet.env.now / 1e6, size))
        return original_offer(flow_id, size)

    piconet.offer_packet = recording_offer
    CBRSource(piconet, 1, 0.020, (144, 176), rng=random.Random(3)).start()
    piconet.run(5.0)
    assert check_trace_conformance(cbr_tspec(0.020, 144, 176), trace) == []


def test_cbr_source_validation():
    piconet = make_piconet()
    with pytest.raises(ValueError):
        CBRSource(piconet, 1, interval=0, size=100)
    with pytest.raises(ValueError):
        CBRSource.from_rate(piconet, 1, rate_bps=0, size=100)


def test_cbr_source_fractional_microsecond_interval_does_not_drift():
    # regression: rounding each 1.4 us gap independently to 1 us used to
    # inflate the emitted rate by 40%; tracking the cumulative target keeps
    # the long-run rate nominal
    piconet = make_piconet()
    source = CBRSource(piconet, 1, interval=1.4e-6, size=40)
    source.start()
    piconet.run(0.02)
    assert source.packets_generated == pytest.approx(0.02 / 1.4e-6, rel=0.01)


def test_cbr_source_sub_microsecond_interval_matches_simulated_time():
    # regression: a sub-us interval is clamped to the 1 us simulation
    # resolution; the emitted rate must equal one packet per simulated
    # microsecond (and never be "repaid" later as a burst)
    piconet = make_piconet()
    source = CBRSource(piconet, 1, interval=0.4e-6, size=40)
    source.start()
    piconet.run(0.01)
    assert source.packets_generated == pytest.approx(10_000, rel=0.01)


def test_onoff_source_sub_microsecond_interval_keeps_duty_cycle():
    # regression: `elapsed += interval` accumulated the nominal interval
    # while the timeout was clamped to 1 us, so a 0.5 us interval stretched
    # every on-period to twice its duration (duty cycle 2/3 instead of 1/2)
    piconet = make_piconet()
    source = OnOffSource(piconet, 1, interval=0.5e-6, size=40,
                         mean_on=0.0005, mean_off=0.0005,
                         rng=random.Random(7))
    source.start()
    piconet.run(0.05)
    # ~50% duty at 1 packet/us: 25_000 expected, 33_333 with the old bug
    assert 21_000 < source.packets_generated < 29_000


def test_poisson_source_mean_rate():
    piconet = make_piconet()
    source = PoissonSource(piconet, 1, rate_packets_per_second=100, size=50,
                           rng=random.Random(5))
    source.start()
    piconet.run(5.0)
    assert source.packets_generated == pytest.approx(500, rel=0.2)


def test_onoff_source_produces_bursts():
    piconet = make_piconet()
    source = OnOffSource(piconet, 1, interval=0.005, size=50, mean_on=0.1,
                         mean_off=0.1, rng=random.Random(7))
    source.start()
    piconet.run(5.0)
    # roughly half the time on => roughly half the packets of an always-on CBR
    always_on = 5.0 / 0.005
    assert 0.2 * always_on < source.packets_generated < 0.8 * always_on


def test_trace_source_replays_exact_times():
    piconet = make_piconet()
    source = TraceSource(piconet, 1, trace=[(0.010, 100), (0.025, 50)])
    source.start()
    piconet.run(0.1)
    assert source.packets_generated == 2
    assert piconet.flow_state(1).queue.offered_bytes == 150


def test_start_offset_delays_first_packet():
    piconet = make_piconet()
    source = CBRSource(piconet, 1, 0.020, 176, start_offset=0.5)
    source.start()
    piconet.run(0.4)
    assert source.packets_generated == 0


def test_sink_summary_and_helpers():
    piconet = make_piconet()
    CBRSource(piconet, 1, 0.020, 176).start()
    piconet.run(1.0)
    sink = DelayThroughputSink(piconet)
    rows = sink.summary()
    assert len(rows) == 1
    assert rows[0]["flow_id"] == 1
    assert rows[0]["throughput_kbps"] == pytest.approx(70.4, rel=0.1)
    assert sink.max_delay(1) >= sink.mean_delay(1) - 1e-12
    assert sink.delivered_packets(1) > 0
    assert sink.slave_throughput_kbps(1) == pytest.approx(
        rows[0]["throughput_kbps"], rel=1e-6)
