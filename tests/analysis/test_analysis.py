"""Tests of the statistics and reporting helpers."""

import math

import pytest

from repro.analysis import (
    confidence_interval,
    format_kv,
    format_table,
    summarize,
    utilisation,
    z_value,
)


def test_summarize_basic_statistics():
    stats = summarize([1, 2, 3, 4, 5])
    assert stats["count"] == 5
    assert stats["mean"] == pytest.approx(3.0)
    assert stats["min"] == 1 and stats["max"] == 5
    assert stats["p50"] == pytest.approx(3.0)


def test_summarize_empty_returns_nans():
    stats = summarize([])
    assert stats["count"] == 0
    assert math.isnan(stats["mean"])


def test_confidence_interval_contains_mean_and_shrinks_with_n():
    small = confidence_interval([1, 2, 3, 4, 5] * 4)
    large = confidence_interval([1, 2, 3, 4, 5] * 400)
    assert small[0] < 3.0 < small[1]
    assert (large[1] - large[0]) < (small[1] - small[0])
    with pytest.raises(ValueError):
        confidence_interval([1.0], level=1.5)


def test_z_value_standard_levels_use_table_values():
    assert z_value(0.90) == pytest.approx(1.645)
    assert z_value(0.95) == pytest.approx(1.960)
    assert z_value(0.99) == pytest.approx(2.576)


def test_z_value_nonstandard_levels_computed_not_mislabelled():
    # regression: any unsupported level silently fell back to z=1.96,
    # labelling e.g. an 80% interval as if it were 95%
    assert z_value(0.80) == pytest.approx(1.2816, abs=1e-3)
    assert z_value(0.999) == pytest.approx(3.2905, abs=1e-3)
    for level in (0.0, 1.0, -0.5, 1.5):
        with pytest.raises(ValueError):
            z_value(level)


def test_confidence_interval_widens_with_level():
    samples = [1.0, 2.0, 3.0, 4.0, 5.0] * 10
    narrow = confidence_interval(samples, level=0.80)
    default = confidence_interval(samples, level=0.95)
    wide = confidence_interval(samples, level=0.999)
    assert (narrow[1] - narrow[0]) < (default[1] - default[0])
    assert (default[1] - default[0]) < (wide[1] - wide[0])


def test_utilisation_bounds():
    assert utilisation(800, 1600) == pytest.approx(0.5)
    with pytest.raises(ValueError):
        utilisation(-1, 100)
    with pytest.raises(ValueError):
        utilisation(10, 0)
    with pytest.raises(ValueError):
        utilisation(101, 100)


def test_format_table_alignment_and_content():
    text = format_table(["name", "value"], [["alpha", 1.5], ["b", 22.25]],
                        float_format=".1f", title="demo")
    lines = text.splitlines()
    assert lines[0] == "demo"
    assert "name" in lines[1] and "value" in lines[1]
    assert any("alpha" in line and "1.5" in line for line in lines)
    assert any("22.2" in line for line in lines)


def test_format_table_rejects_ragged_rows():
    with pytest.raises(ValueError):
        format_table(["a", "b"], [[1]])


def test_format_table_renders_booleans():
    text = format_table(["ok"], [[True], [False]])
    assert "yes" in text and "no" in text


def test_format_kv_alignment():
    text = format_kv({"rate": 8.8, "flows": 4}, title="params")
    lines = text.splitlines()
    assert lines[0] == "params"
    assert lines[1].startswith("rate ")
    assert format_kv({}) == ""
