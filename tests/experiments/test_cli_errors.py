"""Error-path tests of the ``python -m repro.experiments`` CLI.

Every malformed invocation must exit nonzero with a clear one-line
message — never a traceback.
"""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments.__main__ import _parse_overrides, main

REPO_ROOT = Path(__file__).resolve().parents[2]


def run_cli(*args):
    return subprocess.run(
        [sys.executable, "-m", "repro.experiments", *args],
        capture_output=True, text=True, cwd=REPO_ROOT,
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"})


# ------------------------------------------------------------- subprocess

def test_unknown_experiment_name_exits_with_known_names():
    result = run_cli("run", "does_not_exist", "--no-cache")
    assert result.returncode != 0
    assert "unknown experiment 'does_not_exist'" in result.stderr
    assert "registered:" in result.stderr
    assert "Traceback" not in result.stderr


def test_invalid_backend_is_rejected_by_argparse():
    result = run_cli("run", "figure5", "--backend", "quantum")
    assert result.returncode != 0
    assert "invalid choice: 'quantum'" in result.stderr
    assert "Traceback" not in result.stderr


def test_malformed_grid_override_exits_with_message():
    result = run_cli("run", "lossy_channel", "--no-cache",
                     "--set", "bit_error_rate=[0.0,1e-3")
    assert result.returncode != 0
    assert "not valid JSON" in result.stderr
    assert "Traceback" not in result.stderr


def test_set_without_value_exits_with_message():
    result = run_cli("run", "figure5", "--no-cache", "--set", "duration")
    assert result.returncode != 0
    assert "expects key=value" in result.stderr
    assert "Traceback" not in result.stderr


def test_wrongly_typed_override_exits_without_traceback():
    result = run_cli("run", "figure5", "--no-cache",
                     "--set", "duration_seconds=fast")
    assert result.returncode != 0
    assert "Traceback" not in result.stderr
    assert result.stderr.strip()  # some explanation is printed


def test_unknown_regen_golden_experiment_exits_with_known_names():
    result = run_cli("regen-golden", "does_not_exist")
    assert result.returncode != 0
    assert "unknown experiment 'does_not_exist'" in result.stderr
    assert "Traceback" not in result.stderr


# ------------------------------------------------------------ describe

def test_describe_unknown_experiment_exits_with_known_names():
    result = run_cli("describe", "does_not_exist")
    assert result.returncode != 0
    assert "unknown experiment 'does_not_exist'" in result.stderr
    assert "Traceback" not in result.stderr


def test_describe_prints_grid_defaults_and_resolved_spec(capsys):
    from repro.experiments.__main__ import _cmd_describe
    import argparse

    assert _cmd_describe(argparse.Namespace(
        experiment="figure5", set=["channel.ber=1e-4",
                                   "channel.model=iid"])) == 0
    out = capsys.readouterr().out
    assert "figure5:" in out
    assert "delay_requirement" in out       # the grid axis
    assert "duration_seconds" in out        # a default
    assert '"ber": 0.0001' in out           # the override reached the spec
    assert '"model": "iid"' in out


def test_describe_analytic_experiment_reports_no_scenario(capsys):
    from repro.experiments.__main__ import _cmd_describe
    import argparse

    assert _cmd_describe(argparse.Namespace(
        experiment="admission_capacity", set=[])) == 0
    out = capsys.readouterr().out
    assert "analytic experiment" in out
    assert "link budgets" not in out  # no spec, no budget table


def test_describe_prints_link_budget_table_respecting_set(capsys):
    from repro.experiments.__main__ import _cmd_describe
    import argparse

    assert _cmd_describe(argparse.Namespace(
        experiment="bridge_residency_admission",
        set=["bridge_share=[0.3]"])) == 0
    out = capsys.readouterr().out
    assert "link budgets (effective capacity per GS link)" in out
    # the bridge slave's residency share and absence window resolved
    # from the --set share (0.3 of a 48-slot period, 2 guard slots)
    assert "0.2500" in out
    assert "22.50 ms" in out


def test_describe_without_gs_flows_reports_empty_budget_table(capsys):
    from repro.experiments.__main__ import _cmd_describe
    import argparse

    assert _cmd_describe(argparse.Namespace(
        experiment="crowded_room", set=["piconets=[2]"])) == 0
    assert "(no GS-managed flows)" in capsys.readouterr().out


def test_describe_dotted_set_on_analytic_experiment_exits_with_message():
    result = run_cli("describe", "admission_capacity",
                     "--set", "admission.mode=budget-aware")
    assert result.returncode != 0
    assert "no scenario spec" in result.stderr
    assert "Traceback" not in result.stderr


# --------------------------------------------------- dotted --set overrides

def test_dotted_set_on_analytic_experiment_exits_with_message():
    result = run_cli("run", "admission_capacity", "--no-cache",
                     "--set", "channel.ber=1e-4")
    assert result.returncode != 0
    assert "no scenario spec" in result.stderr
    assert "Traceback" not in result.stderr


def test_dotted_set_unknown_spec_path_exits_with_message():
    result = run_cli("run", "figure5", "--no-cache",
                     "--set", "channel.nope=1")
    assert result.returncode != 0
    assert "has no field 'nope'" in result.stderr
    assert "Traceback" not in result.stderr


def test_describe_dotted_set_bad_value_exits_with_message():
    result = run_cli("describe", "figure5", "--set", "channel.ber=fast")
    assert result.returncode != 0
    assert "expected a number" in result.stderr
    assert "Traceback" not in result.stderr


def test_describe_with_emptied_grid_axis_reports_cleanly():
    result = run_cli("describe", "figure5", "--set", "delay_requirement=[]")
    assert result.returncode == 0
    assert "points: 0" in result.stdout
    assert "emptied a grid axis" in result.stdout
    assert "Traceback" not in result.stderr


def test_axis_clobbering_overrides_are_rejected():
    from repro.experiments.bandwidth_savings import run_point as bw_point
    from repro.experiments.baseline_comparison import run_point as bl_point
    from repro.experiments.improvement_ablation import run_point as abl_point

    with pytest.raises(ValueError, match="fixed-vs-variable"):
        bw_point({"delay_requirement": 0.04,
                  "improvements.variable_interval": True}, 0)
    with pytest.raises(ValueError, match="poller axis"):
        bl_point({"poller": "fep", "poller.kind": "pfp"}, 0)
    with pytest.raises(ValueError, match="configuration axis"):
        abl_point({"configuration": "fixed interval",
                   "improvements.skip_when_no_downlink_data": True}, 0)


def test_programmatic_dotted_override_on_analytic_experiment_raises():
    from repro.experiments.orchestrator import SweepRunner

    with pytest.raises(ValueError, match="no scenario spec"):
        SweepRunner(backend="serial").run(
            "admission_capacity", overrides={"channel.ber": 1e-4})


def test_axis_clobbering_guard_covers_channel_and_bridge_packs():
    from repro.experiments.lossy_channel import scenario_spec as lossy
    from repro.experiments.channel_packs import bridge_split_point_spec

    with pytest.raises(ValueError, match="bit_error_rate axis"):
        lossy({"bit_error_rate": 1e-4, "channel.ber": 1e-3})
    with pytest.raises(ValueError, match="bridge_share axis"):
        bridge_split_point_spec({"bridge_share": 0.5,
                                 "bridges.0.share_a": 0.9})


def test_malformed_structured_dotted_set_exits_without_traceback():
    result = run_cli("run", "figure5", "--no-cache",
                     "--set", "piconets.0.flows=[[1,2]]")
    assert result.returncode != 0
    assert "Traceback" not in result.stderr
    assert "FlowSpec mappings" in result.stderr


def test_dotted_set_list_value_becomes_extra_sweep_axis():
    from repro.experiments.registry import get_experiment

    points = get_experiment("figure5").points(
        {"delay_requirement": [0.04], "channel.ber": [1e-4, 1e-3],
         "channel.model": "iid"})
    assert len(points) == 2
    assert [p["channel.ber"] for p in points] == [1e-4, 1e-3]
    assert all(p["channel.model"] == "iid" for p in points)


# ----------------------------------------------------- in-process parsing

def test_parse_overrides_accepts_json_and_strings():
    overrides = _parse_overrides(
        ["a=1", "b=[1,2]", "c=text", "d=1e-3", "e=true"])
    assert overrides == {"a": 1, "b": [1, 2], "c": "text", "d": 1e-3,
                         "e": True}


@pytest.mark.parametrize("assignment,message", [
    ("x=[1,", "not valid JSON"),
    ("x={'a': 1", "not valid JSON"),
    ("x=", "missing a value"),
    ("novalue", "expects key=value"),
    ("=5", "expects key=value"),
])
def test_parse_overrides_rejects_malformed_assignments(assignment, message):
    with pytest.raises(SystemExit, match=message):
        _parse_overrides([assignment])


def test_main_translates_registry_keyerror_to_systemexit():
    with pytest.raises(SystemExit, match="unknown experiment"):
        main(["run", "nope", "--no-cache"])
