"""Error-path tests of the ``python -m repro.experiments`` CLI.

Every malformed invocation must exit nonzero with a clear one-line
message — never a traceback.
"""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments.__main__ import _parse_overrides, main

REPO_ROOT = Path(__file__).resolve().parents[2]


def run_cli(*args):
    return subprocess.run(
        [sys.executable, "-m", "repro.experiments", *args],
        capture_output=True, text=True, cwd=REPO_ROOT,
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"})


# ------------------------------------------------------------- subprocess

def test_unknown_experiment_name_exits_with_known_names():
    result = run_cli("run", "does_not_exist", "--no-cache")
    assert result.returncode != 0
    assert "unknown experiment 'does_not_exist'" in result.stderr
    assert "registered:" in result.stderr
    assert "Traceback" not in result.stderr


def test_invalid_backend_is_rejected_by_argparse():
    result = run_cli("run", "figure5", "--backend", "quantum")
    assert result.returncode != 0
    assert "invalid choice: 'quantum'" in result.stderr
    assert "Traceback" not in result.stderr


def test_malformed_grid_override_exits_with_message():
    result = run_cli("run", "lossy_channel", "--no-cache",
                     "--set", "bit_error_rate=[0.0,1e-3")
    assert result.returncode != 0
    assert "not valid JSON" in result.stderr
    assert "Traceback" not in result.stderr


def test_set_without_value_exits_with_message():
    result = run_cli("run", "figure5", "--no-cache", "--set", "duration")
    assert result.returncode != 0
    assert "expects key=value" in result.stderr
    assert "Traceback" not in result.stderr


def test_wrongly_typed_override_exits_without_traceback():
    result = run_cli("run", "figure5", "--no-cache",
                     "--set", "duration_seconds=fast")
    assert result.returncode != 0
    assert "Traceback" not in result.stderr
    assert result.stderr.strip()  # some explanation is printed


def test_unknown_regen_golden_experiment_exits_with_known_names():
    result = run_cli("regen-golden", "does_not_exist")
    assert result.returncode != 0
    assert "unknown experiment 'does_not_exist'" in result.stderr
    assert "Traceback" not in result.stderr


# ----------------------------------------------------- in-process parsing

def test_parse_overrides_accepts_json_and_strings():
    overrides = _parse_overrides(
        ["a=1", "b=[1,2]", "c=text", "d=1e-3", "e=true"])
    assert overrides == {"a": 1, "b": [1, 2], "c": "text", "d": 1e-3,
                         "e": True}


@pytest.mark.parametrize("assignment,message", [
    ("x=[1,", "not valid JSON"),
    ("x={'a': 1", "not valid JSON"),
    ("x=", "missing a value"),
    ("novalue", "expects key=value"),
    ("=5", "expects key=value"),
])
def test_parse_overrides_rejects_malformed_assignments(assignment, message):
    with pytest.raises(SystemExit, match=message):
        _parse_overrides([assignment])


def test_main_translates_registry_keyerror_to_systemexit():
    with pytest.raises(SystemExit, match="unknown experiment"):
        main(["run", "nope", "--no-cache"])
