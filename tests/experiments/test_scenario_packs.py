"""Tests of the registered scenario packs (heavy / mixed SCO+GS / BE load).

Includes the fast orchestrator smoke test: a new scenario driven end to end
through ``python -m repro.experiments run ... --backend serial`` with one
replication, so backend regressions fail tier-1 instead of only surfacing
in long sweeps.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments import experiment_names, get_experiment
from repro.experiments.orchestrator import SweepRunner
from repro.experiments.scenario_packs import (
    _jain_fairness,
    run_be_load_scale_point,
    run_heavy_piconet_point,
    run_mixed_sco_gs_point,
)
from repro.traffic.workloads import build_figure4_scenario

NEW_SCENARIOS = ("be_load_scale", "heavy_piconet", "mixed_sco_gs")


def test_scenario_packs_are_registered_with_grids():
    for name in NEW_SCENARIOS:
        assert name in experiment_names()
        spec = get_experiment(name)
        assert spec.grid and spec.defaults["duration_seconds"] > 0


def test_jain_fairness_bounds():
    assert _jain_fairness([1.0, 1.0, 1.0]) == pytest.approx(1.0)
    assert _jain_fairness([1.0, 0.0, 0.0]) == pytest.approx(1.0 / 3.0)
    import math
    assert math.isnan(_jain_fairness([]))
    assert math.isnan(_jain_fairness([0.0, 0.0]))


def test_heavy_piconet_point_serves_all_seven_slaves():
    rows = run_heavy_piconet_point(
        {"delay_requirement": 0.040, "duration_seconds": 1.0}, seed=1)
    assert len(rows) == 1
    row = rows[0]
    assert row["admitted"] is True
    # every slave, GS and BE alike, delivers traffic
    for slave in range(1, 8):
        assert row[f"S{slave}"] > 0
    # GS slaves carry GS + BE, so they exceed their pure-GS rates
    assert row["S1"] > 64.0 and row["S2"] > 128.0
    assert row["be"]["throughput_kbps"] > 0
    assert 0 < row["be"]["fairness"] <= 1.0
    assert row["gs"]["max_delay_s"] > 0
    assert row["slots"]["gs"] > 0 and row["slots"]["be"] > 0


def test_mixed_sco_gs_point_carries_voice_and_acl_side_by_side():
    rows = run_mixed_sco_gs_point(
        {"delay_requirement": 0.044, "duration_seconds": 1.0}, seed=1)
    assert len(rows) == 1
    row = rows[0]
    assert row["admitted"] is True
    # the SCO voice link delivers its full 64 kbit/s with a hard small delay
    assert row["voice"]["throughput_kbps"] == pytest.approx(64.0, abs=5.0)
    assert row["voice"]["max_delay_ms"] < 40.0
    # ACL traffic still flows in the 4-slot gaps between HV3 reservations
    assert row["gs"]["throughput_kbps"] > 0
    assert row["be"]["throughput_kbps"] > 0
    assert row["slots"]["sco"] > 0
    # HV3 reserves 2 of every 6 slots
    total = sum(row["slots"][k] for k in ("gs", "be", "sco", "idle"))
    assert row["slots"]["sco"] / total == pytest.approx(1 / 3, abs=0.02)


def test_mixed_sco_gs_requires_disjoint_sco_slaves():
    with pytest.raises(ValueError, match="sco_slaves"):
        build_figure4_scenario(delay_requirement=0.04, sco_slaves=(4,))


def test_be_load_scale_point_scales_offered_load():
    low = run_be_load_scale_point(
        {"delay_requirement": 0.040, "be_load_scale": 0.5,
         "duration_seconds": 1.0}, seed=1)[0]
    high = run_be_load_scale_point(
        {"delay_requirement": 0.040, "be_load_scale": 1.5,
         "duration_seconds": 1.0}, seed=1)[0]
    assert low["admitted"] and high["admitted"]
    assert low["be_load_scale"] == 0.5 and high["be_load_scale"] == 1.5
    # more offered BE load -> more delivered BE throughput (until saturation)
    assert high["be_total_kbps"] > low["be_total_kbps"]
    # the GS flows keep their throughput regardless of the BE load
    assert low["gs_total_kbps"] == pytest.approx(high["gs_total_kbps"],
                                                 rel=0.05)


def test_scenario_pack_sweep_aggregates_nested_metrics():
    result = SweepRunner(max_workers=1).run(
        "mixed_sco_gs",
        overrides={"delay_requirement": [0.044], "duration_seconds": 0.5},
        replications=2, master_seed=0)
    assert len(result.rows) == 1
    row = result.rows[0]
    # nested voice/gs/be/slots dicts arrive flattened with CI bounds
    for key in ("voice_throughput_kbps", "gs_max_delay_s",
                "be_throughput_kbps", "slots_sco"):
        assert key in row["mean"]
        assert key in row["ci"]


def test_cli_smoke_new_scenario_serial_backend(tmp_path):
    """Fast end-to-end orchestrator smoke: new scenario, serial backend."""
    out = tmp_path / "out.json"
    command = [sys.executable, "-m", "repro.experiments", "run",
               "heavy_piconet", "--backend", "serial", "--replications", "1",
               "--no-cache", "--set", "delay_requirement=[0.04]",
               "--set", "duration_seconds=0.5", "--json", str(out)]
    src = str(Path(__file__).resolve().parents[2] / "src")
    env = {**os.environ, "PYTHONPATH": src}
    completed = subprocess.run(command, capture_output=True, text=True,
                               env=env, cwd=str(tmp_path))
    assert completed.returncode == 0, completed.stderr
    payload = json.loads(out.read_text())
    assert payload["experiment"] == "heavy_piconet"
    assert payload["rows"] and payload["rows"][0]["mean"]["admitted"] is True
