"""Tests of the per-link channel scenario packs."""

import pytest

from repro.experiments.channel_packs import (
    DM_VS_DH_POLICIES,
    run_bursty_channel_point,
    run_dm_vs_dh_point,
    run_link_quality_mix_point,
    run_multi_sco_point,
)
from repro.experiments.registry import get_experiment


def test_channel_packs_are_registered_with_grids():
    for name, axis in (("link_quality_mix", "base_bit_error_rate"),
                       ("bursty_channel", "bad_dwell_slots"),
                       ("dm_vs_dh", "bit_error_rate"),
                       ("multi_sco", "acl_types")):
        spec = get_experiment(name)
        assert axis in spec.grid
        assert len(spec.grid[axis]) >= 2


def test_link_quality_mix_ramp_orders_retransmissions():
    rows = run_link_quality_mix_point(
        {"base_bit_error_rate": 3e-4, "duration_seconds": 2.0}, seed=2)
    row = rows[0]
    assert row["admitted"]
    retx = row["retx"]
    # the ramp makes far slaves lossier; compare its clean and dirty ends
    assert retx["S7"] > retx["S1"]
    assert sum(retx.values()) > 0
    clean = run_link_quality_mix_point(
        {"base_bit_error_rate": 0.0, "duration_seconds": 2.0}, seed=2)[0]
    assert all(v == 0 for v in clean["retx"].values())


def test_bursty_channel_same_mean_ber_more_retransmission_clusters():
    short = run_bursty_channel_point(
        {"bad_dwell_slots": 5, "duration_seconds": 2.0}, seed=2)[0]
    long = run_bursty_channel_point(
        {"bad_dwell_slots": 125, "duration_seconds": 2.0}, seed=2)[0]
    assert short["admitted"] and long["admitted"]
    assert short["gs_retransmissions"] > 0
    assert long["gs_retransmissions"] > 0
    with pytest.raises(ValueError):
        run_bursty_channel_point({"bad_dwell_slots": 0}, seed=2)


def test_dm_vs_dh_crossover():
    """FEC types lose below the BER crossover and win above it."""

    def acl_kbps(ber, policy):
        return run_dm_vs_dh_point(
            {"bit_error_rate": ber, "policy": policy,
             "duration_seconds": 2.0}, seed=5)[0]["acl_kbps"]

    low, high = 3e-5, 1e-3
    assert acl_kbps(low, "DH") > acl_kbps(low, "DM")
    assert acl_kbps(high, "DM") > acl_kbps(high, "DH")


def test_dm_vs_dh_adaptive_tracks_the_winner():
    high = 1e-3
    rows = {policy: run_dm_vs_dh_point(
        {"bit_error_rate": high, "policy": policy, "duration_seconds": 2.0},
        seed=5)[0] for policy in DM_VS_DH_POLICIES}
    # under heavy loss the adaptive policy must clearly beat static DH
    assert rows["adaptive"]["acl_kbps"] > rows["DH"]["acl_kbps"] * 1.3
    with pytest.raises(ValueError):
        run_dm_vs_dh_point({"bit_error_rate": 0.0, "policy": "nope"}, seed=1)


def test_multi_sco_dh1_degrades_where_dh3_starves():
    dh1 = run_multi_sco_point(
        {"acl_types": "DH1", "duration_seconds": 2.0}, seed=3)[0]
    dh3 = run_multi_sco_point(
        {"acl_types": "DH1+DH3", "duration_seconds": 2.0}, seed=3)[0]
    # two HV3 links leave 2-slot gaps: DH1-only ACL keeps flowing...
    assert not dh1["acl_starved"]
    assert dh1["acl_kbps"] > 50.0
    # ...while a DH3-capable policy cannot fit the gap and starves
    assert dh3["acl_starved"]
    assert dh3["acl_kbps"] == 0.0
    # both voice links run at full rate either way
    for row in (dh1, dh3):
        assert row["voice"]["S6_kbps"] == pytest.approx(64.0, abs=5.0)
        assert row["voice"]["S7_kbps"] == pytest.approx(64.0, abs=5.0)
        assert row["slots"]["sco"] > 0
