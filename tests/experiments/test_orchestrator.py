"""Tests of the sweep orchestration subsystem (registry + SweepRunner)."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.stats import confidence_interval
from repro.experiments import experiment_names, get_experiment
from repro.experiments.orchestrator import (
    BatchingProcessBackend,
    ProcessPoolBackend,
    SerialBackend,
    SweepRunner,
    aggregate_replications,
    flatten_row,
    format_sweep,
    make_backend,
    point_seed,
)
from repro.experiments.registry import ExperimentSpec, register, unregister
from repro.sim.rng import derive_seed

#: every hand-written driver must have registered a sweep spec on import
EXPECTED_EXPERIMENTS = [
    "admission_capacity",
    "bandwidth_savings",
    "baseline_comparison",
    "be_load_scale",
    "bursty_channel",
    "delay_compliance",
    "dm_vs_dh",
    "figure5",
    "heavy_piconet",
    "improvement_ablation",
    "link_quality_mix",
    "lossy_channel",
    "mixed_sco_gs",
    "multi_sco",
    "sco_comparison",
]

#: calls recorded by the toy experiment (inline execution only)
TOY_CALLS = []


def toy_run_point(params, seed):
    TOY_CALLS.append((dict(params), seed))
    # a deterministic pseudo-measurement that varies with the seed
    noise = (seed % 1000) / 1000.0
    return [{"x": params["x"], "label": f"x={params['x']}",
             "value": params["x"] * 10.0 + noise,
             "packets": int(params["x"]) * 100}]


@pytest.fixture
def toy_experiment():
    spec = register(ExperimentSpec(
        name="toy", description="synthetic two-point experiment",
        run_point=toy_run_point, grid={"x": [1, 2]},
        defaults={"duration_seconds": 0.0}))
    TOY_CALLS.clear()
    yield spec
    unregister("toy")


# ---------------------------------------------------------------- registry

def test_all_drivers_register_their_specs():
    assert set(EXPECTED_EXPERIMENTS) <= set(experiment_names())


def test_registry_lookup_unknown_name_raises():
    with pytest.raises(KeyError, match="unknown experiment"):
        get_experiment("does-not-exist")


def test_spec_points_cartesian_product_and_overrides(toy_experiment):
    spec = register(ExperimentSpec(
        name="toy-grid", description="", run_point=toy_run_point,
        grid={"a": [1, 2], "b": ["x", "y"]}, defaults={"c": 7}))
    try:
        points = spec.points()
        assert len(points) == 4
        assert points[0] == {"a": 1, "b": "x", "c": 7}
        # scalar override pins an axis; other keys override defaults
        points = spec.points({"a": 5, "c": 9})
        assert points == [{"a": 5, "b": "x", "c": 9},
                          {"a": 5, "b": "y", "c": 9}]
        # sequence override replaces an axis
        points = spec.points({"b": ["z"], "extra": True})
        assert points == [{"a": 1, "b": "z", "c": 7, "extra": True},
                          {"a": 2, "b": "z", "c": 7, "extra": True}]
    finally:
        unregister("toy-grid")


# ------------------------------------------------------- seed derivation

def test_point_seed_uses_the_random_streams_scheme():
    params = {"x": 1, "duration_seconds": 0.0}
    seed = point_seed(42, "toy", params, 1)
    label = ('toy:{"duration_seconds":0.0,"x":1}:rep1')
    assert seed == derive_seed(42, label)
    # parameter order must not matter
    assert seed == point_seed(
        42, "toy", {"duration_seconds": 0.0, "x": 1}, 1)
    # every coordinate perturbs the seed
    assert seed != point_seed(43, "toy", params, 1)
    assert seed != point_seed(42, "toy", params, 2)
    assert seed != point_seed(42, "other", params, 1)


def test_same_master_seed_same_rows_regardless_of_workers(toy_experiment):
    sequential = SweepRunner(max_workers=1).run("toy", replications=3,
                                                master_seed=7)
    inline_again = SweepRunner(max_workers=1).run("toy", replications=3,
                                                  master_seed=7)
    assert sequential.to_json() == inline_again.to_json()
    other_seed = SweepRunner(max_workers=1).run("toy", replications=3,
                                                master_seed=8)
    assert sequential.to_json() != other_seed.to_json()


def test_worker_pool_matches_inline_execution():
    # admission_capacity is analytic and fast: exercise the real
    # ProcessPoolExecutor path and require byte-identical aggregation
    inline = SweepRunner(max_workers=1).run("admission_capacity")
    pooled = SweepRunner(max_workers=2).run("admission_capacity")
    assert inline.to_json() == pooled.to_json()
    assert pooled.rows, "sweep produced no rows"


# ----------------------------------------------------------------- backends

def test_all_backends_produce_byte_identical_rows():
    # the ISSUE acceptance: serial / process / batch must agree down to the
    # serialised JSON for a registered spec under the same master seed
    results = {
        name: SweepRunner(max_workers=2, backend=name).run(
            "admission_capacity", master_seed=3)
        for name in ("serial", "process", "batch")}
    serial = results["serial"]
    assert serial.rows, "sweep produced no rows"
    assert serial.to_json() == results["process"].to_json()
    assert serial.to_json() == results["batch"].to_json()
    for name, result in results.items():
        assert result.backend == name


def test_backend_resolution_from_max_workers_and_names():
    assert isinstance(SweepRunner(max_workers=1).backend, SerialBackend)
    assert isinstance(SweepRunner(max_workers=0).backend, SerialBackend)
    assert isinstance(SweepRunner(max_workers=4).backend, ProcessPoolBackend)
    assert isinstance(SweepRunner(max_workers=None).backend,
                      ProcessPoolBackend)
    assert isinstance(SweepRunner(backend="batch").backend,
                      BatchingProcessBackend)
    explicit = BatchingProcessBackend(max_workers=2, batch_size=3)
    assert SweepRunner(backend=explicit).backend is explicit
    with pytest.raises(ValueError, match="unknown execution backend"):
        make_backend("carrier-pigeon")
    with pytest.raises(TypeError):
        SweepRunner(backend=42)


def test_batching_backend_chunking_and_validation():
    with pytest.raises(ValueError):
        BatchingProcessBackend(batch_size=0)
    with pytest.raises(ValueError):
        BatchingProcessBackend(oversubscribe=0)
    backend = BatchingProcessBackend(max_workers=2, batch_size=3)
    pending = [(i, None) for i in range(8)]
    chunks = backend._chunk(pending)
    assert [len(c) for c in chunks] == [3, 3, 2]
    assert [slot for chunk in chunks for slot, _ in chunk] == list(range(8))
    # derived batch size: ceil(8 / (2 workers * 4 oversubscribe)) = 1
    assert [len(c) for c in
            BatchingProcessBackend(max_workers=2)._chunk(pending)] == [1] * 8


def test_adaptive_batching_validation():
    with pytest.raises(ValueError):
        BatchingProcessBackend(target_batch_seconds=0)
    with pytest.raises(ValueError):
        BatchingProcessBackend(max_batch_size=0)


def test_adaptive_batching_sizes_chunks_from_observed_cost():
    backend = BatchingProcessBackend(max_workers=2,
                                     target_batch_seconds=1.0,
                                     max_batch_size=16)
    # no cost estimate yet: probe with single-task batches
    assert backend._next_batch_size(remaining=100) == 1
    # 50 ms per task -> ~20 tasks per second-long chunk, clamped to 16
    backend._observe_batch(batch_seconds=0.05, batch_size=1)
    assert backend._next_batch_size(remaining=100) == 16
    # expensive tasks shrink the chunks again (EWMA follows the drift)
    for _ in range(20):
        backend._observe_batch(batch_seconds=2.0, batch_size=4)
    assert backend._next_batch_size(remaining=100) == 2
    # never exceed the remaining work and never return zero
    assert backend._next_batch_size(remaining=1) == 1
    backend._task_cost_ewma = 1e9
    assert backend._next_batch_size(remaining=100) == 1
    # free tasks saturate at the cap
    backend._task_cost_ewma = 0.0
    assert backend._next_batch_size(remaining=100) == 16


def test_adaptive_batching_ewma_converges():
    backend = BatchingProcessBackend()
    backend._observe_batch(1.0, 1)
    assert backend._task_cost_ewma == pytest.approx(1.0)
    for _ in range(30):
        backend._observe_batch(0.1, 1)
    assert backend._task_cost_ewma == pytest.approx(0.1, rel=0.05)


def test_adaptive_batching_preserves_task_order(toy_experiment):
    # default batch backend (no fixed batch_size) is the adaptive one
    backend = SweepRunner(max_workers=2, backend="batch").backend
    assert isinstance(backend, BatchingProcessBackend)
    assert backend.batch_size is None
    result = SweepRunner(max_workers=2, backend="batch").run(
        "toy", master_seed=5)
    serial = SweepRunner(max_workers=1).run("toy", master_seed=5)
    assert result.to_json() == serial.to_json()


# ----------------------------------------------------------------- progress

def test_progress_callback_reports_every_task(toy_experiment):
    events = []
    runner = SweepRunner(max_workers=1, progress=events.append)
    runner.run("toy", replications=3, master_seed=2)
    starts = [e for e in events if e.event == "start"]
    dones = [e for e in events if e.event == "done"]
    assert len(starts) == len(dones) == 6  # 2 points x 3 replications
    assert [e.completed for e in dones] == list(range(1, 7))
    assert all(e.total == 6 for e in events)
    assert all(not e.cached for e in events)
    assert all(e.elapsed_seconds >= 0 for e in events)
    for group in (starts, dones):
        assert {(e.point_index, e.replication) for e in group} == {
            (p, r) for p in range(2) for r in range(3)}
    assert all(e.params["x"] in (1, 2) for e in events)


def test_progress_callback_marks_cache_hits(toy_experiment, tmp_path):
    cache_dir = str(tmp_path / "cache")
    SweepRunner(max_workers=1, cache_dir=cache_dir).run(
        "toy", replications=2, master_seed=4)
    events = []
    SweepRunner(max_workers=1, cache_dir=cache_dir,
                progress=events.append).run("toy", replications=2,
                                            master_seed=4)
    assert len(events) == 4
    assert all(e.cached for e in events)


# ------------------------------------------------------------------ cache

def test_cache_miss_then_hit_skips_execution(toy_experiment, tmp_path):
    cache_dir = str(tmp_path / "cache")
    runner = SweepRunner(max_workers=1, cache_dir=cache_dir)
    first = runner.run("toy", replications=2, master_seed=1)
    assert first.tasks_run == 4 and first.cache_hits == 0
    assert len(TOY_CALLS) == 4

    rerun = SweepRunner(max_workers=1, cache_dir=cache_dir).run(
        "toy", replications=2, master_seed=1)
    assert rerun.tasks_run == 0 and rerun.cache_hits == 4
    assert len(TOY_CALLS) == 4, "cached tasks must not execute again"
    assert rerun.to_json() == first.to_json()

    # a different master seed misses cleanly
    other = SweepRunner(max_workers=1, cache_dir=cache_dir).run(
        "toy", replications=2, master_seed=2)
    assert other.tasks_run == 4 and other.cache_hits == 0


def test_cache_partial_hit_only_runs_new_points(toy_experiment, tmp_path):
    cache_dir = str(tmp_path / "cache")
    SweepRunner(max_workers=1, cache_dir=cache_dir).run(
        "toy", overrides={"x": [1]}, replications=2, master_seed=1)
    TOY_CALLS.clear()
    grown = SweepRunner(max_workers=1, cache_dir=cache_dir).run(
        "toy", overrides={"x": [1, 2]}, replications=2, master_seed=1)
    # point x=1 is served from the cache, only x=2 executes
    assert grown.cache_hits == 2 and grown.tasks_run == 2
    assert all(params["x"] == 2 for params, _ in TOY_CALLS)


# ------------------------------------------------------------ aggregation

def test_ci_aggregation_matches_analysis_stats(toy_experiment):
    result = SweepRunner(max_workers=1).run("toy", replications=2,
                                            master_seed=5)
    assert len(result.rows) == 2
    for row in result.rows:
        x = row["point"]["x"]
        seeds = [point_seed(5, "toy", row["point"], r) for r in range(2)]
        samples = [x * 10.0 + (seed % 1000) / 1000.0 for seed in seeds]
        expected_mean = sum(samples) / len(samples)
        expected_ci = confidence_interval(samples, 0.95)
        assert row["mean"]["value"] == pytest.approx(expected_mean)
        assert row["ci"]["value"][0] == pytest.approx(expected_ci[0])
        assert row["ci"]["value"][1] == pytest.approx(expected_ci[1])
        # non-numeric fields pass through; agreeing ints stay exact ints
        assert row["mean"]["label"] == f"x={x}"
        assert row["mean"]["packets"] == x * 100
        assert isinstance(row["mean"]["packets"], int)


def test_aggregate_replications_rejects_mismatched_rows():
    with pytest.raises(ValueError, match="row count"):
        aggregate_replications([[{"a": 1}], []])


def test_disagreeing_boolean_verdicts_surface_as_fraction():
    # a bound violation in any replication must never hide behind the
    # first replication's True
    rows = aggregate_replications([[{"bound_met": True, "d": 1.0}],
                                   [{"bound_met": False, "d": 2.0}],
                                   [{"bound_met": False, "d": 3.0}]])
    assert rows[0]["mean"]["bound_met"] == pytest.approx(1.0 / 3.0)
    # agreeing verdicts stay plain booleans
    rows = aggregate_replications([[{"bound_met": True}],
                                   [{"bound_met": True}]])
    assert rows[0]["mean"]["bound_met"] is True


def test_flatten_row_handles_nesting_and_collisions():
    flat = flatten_row({"a": 1, "b": {"c": 2.5, "d": {"e": True}},
                        "f": [1, 2]})
    assert flat == {"a": 1, "b_c": 2.5, "b_d_e": True, "f": [1, 2]}
    with pytest.raises(ValueError, match="duplicate key"):
        flatten_row({"a_b": 1, "a": {"b": 2}})


def test_aggregate_replications_flattens_nested_metric_dicts():
    rows = aggregate_replications([
        [{"d": 0.1, "fixed": {"gs_slots": 10, "note": "x"},
          "variable": {"gs_slots": 4}}],
        [{"d": 0.1, "fixed": {"gs_slots": 12, "note": "x"},
          "variable": {"gs_slots": 6}}],
    ])
    mean, ci = rows[0]["mean"], rows[0]["ci"]
    assert mean["fixed_gs_slots"] == pytest.approx(11.0)
    assert mean["variable_gs_slots"] == pytest.approx(5.0)
    assert mean["fixed_note"] == "x"
    assert "fixed" not in mean  # the nested dict itself is gone
    low, high = ci["fixed_gs_slots"]
    assert low <= 11.0 <= high
    assert low == pytest.approx(2 * 11.0 - high)  # symmetric around mean


def test_bandwidth_savings_sweep_exposes_flattened_poller_metrics():
    """The ISSUE acceptance: fixed_*/variable_* metrics carry CI bounds."""
    result = SweepRunner(max_workers=1).run(
        "bandwidth_savings",
        overrides={"delay_requirement": [0.035], "duration_seconds": 0.5},
        replications=2, master_seed=1)
    assert result.rows, "sweep produced no rows"
    row = result.rows[0]
    for key in ("fixed_gs_slots", "variable_gs_slots",
                "fixed_be_throughput_kbps", "variable_gs_max_delay_s"):
        assert key in row["mean"], f"missing flattened metric {key}"
        low, high = row["ci"][key]
        assert low <= high
    # the variable-interval poller still saves slots after aggregation
    assert row["mean"]["variable_gs_slots"] < row["mean"]["fixed_gs_slots"]
    # and the flattened keys render as table columns
    assert "fixed_gs_slots" in format_sweep(result)


def test_cache_invalidated_by_spec_version_bump(tmp_path):
    cache_dir = str(tmp_path / "cache")
    try:
        register(ExperimentSpec(
            name="toy-v", description="", run_point=toy_run_point,
            grid={"x": [1]}, version=1))
        first = SweepRunner(max_workers=1, cache_dir=cache_dir).run("toy-v")
        assert first.tasks_run == 1
        unregister("toy-v")
        register(ExperimentSpec(
            name="toy-v", description="", run_point=toy_run_point,
            grid={"x": [1]}, version=2))
        bumped = SweepRunner(max_workers=1, cache_dir=cache_dir).run("toy-v")
        assert bumped.tasks_run == 1 and bumped.cache_hits == 0
    finally:
        unregister("toy-v")


def test_non_stochastic_experiment_runs_single_replication():
    result = SweepRunner(max_workers=1).run("admission_capacity",
                                            replications=5)
    assert result.replications == 1
    assert result.tasks_total == len(
        get_experiment("admission_capacity").grid["rate_bytes_per_second"])


def test_format_sweep_renders_points_and_metrics(toy_experiment):
    result = SweepRunner(max_workers=1).run("toy", replications=2)
    text = format_sweep(result)
    assert "toy" in text and "value" in text and "±" in text


# ---------------------------------------------------------------- the CLI

def test_cli_list_names_all_experiments(capsys):
    from repro.experiments.__main__ import main
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in EXPECTED_EXPERIMENTS:
        assert name in out


def test_cli_backend_flag_selects_backend_and_agrees(tmp_path):
    from repro.experiments.__main__ import main
    outputs = {}
    for backend in ("serial", "process", "batch"):
        out = tmp_path / f"{backend}.json"
        assert main(["run", "admission_capacity", "--backend", backend,
                     "--workers", "2", "--no-cache",
                     "--json", str(out)]) == 0
        outputs[backend] = out.read_bytes()
    assert outputs["serial"] == outputs["process"] == outputs["batch"]


def test_cli_progress_flag_logs_per_task(tmp_path, caplog):
    import logging

    from repro.experiments.__main__ import main
    with caplog.at_level(logging.INFO, logger="repro.experiments.progress"):
        assert main(["run", "admission_capacity", "--backend", "serial",
                     "--progress", "--no-cache",
                     "--json", str(tmp_path / "out.json")]) == 0
    lines = [r.message for r in caplog.records
             if "admission_capacity: task" in r.message]
    grid = get_experiment("admission_capacity").grid["rate_bytes_per_second"]
    done_lines = [line for line in lines if "done (" in line]
    start_lines = [line for line in lines if "task started" in line]
    assert len(done_lines) == len(start_lines) == len(grid)
    assert "task started" in lines[0]
    assert "task 1/" in lines[1] and "done" in lines[1]


def test_cli_run_writes_json_and_hits_cache(tmp_path):
    env_args = ["run", "admission_capacity", "--workers", "2",
                "--cache-dir", str(tmp_path / "cache")]
    from repro.experiments.__main__ import main
    out_a, out_b = tmp_path / "a.json", tmp_path / "b.json"
    assert main(env_args + ["--json", str(out_a)]) == 0
    assert main(env_args + ["--json", str(out_b)]) == 0
    assert out_a.read_bytes() == out_b.read_bytes()
    payload = json.loads(out_a.read_text())
    assert payload["experiment"] == "admission_capacity"
    assert payload["rows"]


def test_cli_run_resume_notes_store_hits(tmp_path, capsys):
    from repro.experiments.__main__ import main
    env_args = ["run", "admission_capacity", "--resume",
                "--cache-dir", str(tmp_path / "cache"),
                "--json", str(tmp_path / "out.json")]
    assert main(env_args) == 0
    capsys.readouterr()
    assert main(env_args) == 0
    err = capsys.readouterr().err
    grid = get_experiment("admission_capacity").grid["rate_bytes_per_second"]
    assert f"resumed: {len(grid)} of {len(grid)} task(s)" in err


@pytest.mark.slow
def test_cli_figure5_parallel_replicated_acceptance(tmp_path):
    """The ISSUE acceptance path: figure5 --workers 4 --replications 3."""
    cache = str(tmp_path / "cache")

    def invoke(workers, out):
        command = [sys.executable, "-m", "repro.experiments", "run",
                   "figure5", "--workers", str(workers),
                   "--replications", "3", "--cache-dir", cache,
                   "--set", "delay_requirement=[0.032,0.042]",
                   "--set", "duration_seconds=1.0",
                   "--json", str(out)]
        src = str(Path(__file__).resolve().parents[2] / "src")
        env = {**os.environ, "PYTHONPATH": src}
        completed = subprocess.run(command, capture_output=True, text=True,
                                   env=env, cwd=str(tmp_path))
        assert completed.returncode == 0, completed.stderr
        return completed.stdout

    parallel_out = invoke(4, tmp_path / "par.json")
    assert "cache hits: 0" in parallel_out
    cached_out = invoke(1, tmp_path / "seq.json")
    assert "cache hits: 6" in cached_out and "run: 0" in cached_out
    assert ((tmp_path / "par.json").read_bytes()
            == (tmp_path / "seq.json").read_bytes())
    rows = json.loads((tmp_path / "par.json").read_text())["rows"]
    assert len(rows) == 2
    for row in rows:
        assert row["mean"]["admitted"] is True
        assert row["ci"]["S1"][0] <= row["mean"]["S1"] <= row["ci"]["S1"][1]
