"""Channel determinism: per-link error sequences are reproducible.

The ISSUE acceptance: the same master seed must yield byte-identical
per-link error sequences — and therefore byte-identical sweep results —
no matter which execution backend ran the tasks.
"""

import pytest

from repro.baseband import ChannelMap, GilbertElliottChannel, LossyChannel
from repro.baseband.packets import BasebandPacket, get_packet_type
from repro.experiments.lossy_channel import make_channel_map
from repro.experiments.orchestrator import SweepRunner
from repro.sim.rng import RandomStreams


def _dh3():
    return BasebandPacket(get_packet_type("DH3"), payload=150)


def test_make_channel_map_is_reproducible_per_link():
    def error_sequence(model):
        cmap = make_channel_map(1e-3, seed=9, channel_model=model)
        return {
            (slave, direction): tuple(
                cmap.transmit(slave, direction, _dh3(), now_us=n * 1250).ok
                for n in range(300))
            for slave in (1, 4) for direction in ("DL", "UL")}

    for model in ("iid", "gilbert"):
        first, second = error_sequence(model), error_sequence(model)
        assert first == second
        # links differ from each other (independent substreams)
        assert len(set(first.values())) > 1
    with pytest.raises(ValueError):
        make_channel_map(1e-3, seed=9, channel_model="warp")
    assert make_channel_map(0.0, seed=9) is None


def test_lossy_sweep_byte_identical_across_backends():
    overrides = {"bit_error_rate": [3e-4, 1e-3], "duration_seconds": 1.0}
    results = {
        name: SweepRunner(max_workers=2, backend=name).run(
            "lossy_channel", overrides=overrides, master_seed=11)
        for name in ("serial", "process", "batch")}
    serial = results["serial"]
    assert serial.rows, "sweep produced no rows"
    assert any(row["mean"]["gs_retransmissions"] > 0 for row in serial.rows)
    assert serial.to_json() == results["process"].to_json()
    assert serial.to_json() == results["batch"].to_json()


def test_gilbert_elliott_stationary_error_rate_sanity():
    """Empirical loss of a GE link matches the closed-form stationary rate."""
    channel = GilbertElliottChannel(p_gb=0.01, p_bg=0.04, ber_good=0.0,
                                    ber_bad=2e-3,
                                    rng=RandomStreams(3).stream("ge"))
    packet = _dh3()
    n = 30000
    losses = sum(1 for slot in range(n)
                 if not channel.transmit(packet, now_us=slot * 1250).ok)
    expected = channel.stationary_error_rate(packet)
    assert 0.05 < expected < 0.95
    assert losses / n == pytest.approx(expected, rel=0.1)


def test_channel_map_streams_do_not_perturb_traffic_streams():
    """The channel substream family is isolated from the source streams."""
    parent = RandomStreams(17)
    before = parent.stream("gs-1").random()
    parent2 = RandomStreams(17)
    child = parent2.child("channel-map")
    ChannelMap.uniform(
        lambda rng: LossyChannel(packet_error_rate=0.5, rng=rng),
        streams=child).transmit(1, "DL", _dh3())
    after = parent2.stream("gs-1").random()
    assert before == after
