"""Tests of the inter-piconet interference / scatternet scenario packs."""

import pytest

from repro.baseband.interference import HOP_CHANNELS
from repro.experiments.channel_packs import (
    run_bridge_split_point,
    run_crowded_room_coupled_point,
    run_crowded_room_point,
    run_two_piconet_interference_point,
)
from repro.experiments.registry import get_experiment


def test_interference_packs_are_registered_with_grids():
    for name, axis in (("two_piconet_interference", "interferer_duty"),
                       ("bridge_split", "bridge_share"),
                       ("crowded_room", "piconets"),
                       ("crowded_room_coupled", "piconets")):
        spec = get_experiment(name)
        assert axis in spec.grid
        assert len(spec.grid[axis]) >= 2


def test_two_piconet_interference_goodput_decays_with_duty():
    def row(duty):
        return run_two_piconet_interference_point(
            {"interferer_duty": duty, "duration_seconds": 2.0}, seed=3)[0]

    quiet, loud = row(0.0), row(1.0)
    assert quiet["interference_failures"] == 0
    assert quiet["retransmissions"] == 0
    assert quiet["collision_probability"] == 0.0
    assert loud["collision_probability"] == \
        pytest.approx(1.0 / HOP_CHANNELS)
    assert loud["interference_failures"] > 0
    assert loud["acl_kbps"] < quiet["acl_kbps"]
    # ARQ recovers the collided segments: every interference failure shows
    # up as a retransmission
    assert loud["retransmissions"] >= loud["interference_failures"]


def test_bridge_split_bound_breaks_below_full_residency():
    def row(share):
        return run_bridge_split_point(
            {"bridge_share": share, "duration_seconds": 2.0}, seed=3)[0]

    full, half = row(1.0), row(0.5)
    assert full["admitted"] and half["admitted"]
    # always-resident bridge: the paper's single-piconet behaviour
    assert not full["bridge"]["gs_bound_violated"]
    assert full["bridge"]["absent_polls_a"] == 0
    assert full["bridge"]["b_kbps"] == 0.0
    # a half-time bridge misses polls in A and carries data in B
    assert half["bridge"]["absent_polls_a"] > 0
    assert half["bridge"]["gs_bound_violated"]
    assert half["bridge"]["gs_max_delay_s"] > \
        full["bridge"]["gs_max_delay_s"]
    assert half["bridge"]["b_kbps"] > 0.0


def test_crowded_room_aggregate_grows_while_per_piconet_decays():
    def row(piconets):
        return run_crowded_room_point(
            {"piconets": piconets, "duration_seconds": 2.0}, seed=3)[0]

    alone, crowded = row(1), row(8)
    assert alone["collision_probability"] == 0.0
    assert alone["interference_failures"] == 0
    expected = 1.0 - (1.0 - 1.0 / HOP_CHANNELS) ** 7
    assert crowded["collision_probability"] == pytest.approx(expected)
    assert crowded["per_piconet_kbps"] < alone["per_piconet_kbps"]
    assert crowded["aggregate_kbps"] > alone["aggregate_kbps"]
    with pytest.raises(ValueError):
        run_crowded_room_point({"piconets": 0}, seed=1)


def test_interference_points_are_deterministic_per_seed():
    params = {"interferer_duty": 1.0, "duration_seconds": 1.0}
    first = run_two_piconet_interference_point(dict(params), seed=11)
    second = run_two_piconet_interference_point(dict(params), seed=11)
    other_seed = run_two_piconet_interference_point(dict(params), seed=12)
    assert first == second
    assert first != other_seed


def test_crowded_room_coupled_agrees_with_the_analytic_probability():
    """Small-N validation of the tentpole's coupled mode: with every
    piconet saturated, the measured collision fraction of a fully coupled
    room must agree with the analytic ``1-(1-1/79)^(N-1)`` the uncoupled
    pack assumes."""
    row = run_crowded_room_coupled_point(
        {"piconets": 4, "duration_seconds": 3.0}, seed=3)[0]
    expected = 1.0 - (1.0 - 1.0 / HOP_CHANNELS) ** 3
    assert row["collision_probability"] == pytest.approx(expected)
    # the load saturates every piconet, so activity is (nearly) full...
    assert row["activity_fraction"] > 0.95
    # ...and the observed collision rate sits on the analytic curve
    assert row["observed_collision_fraction"] == \
        pytest.approx(expected, rel=0.25)
    assert row["interference_failures"] > 0
    assert row["per_piconet_kbps_min"] <= row["per_piconet_kbps_max"]
    assert row["aggregate_kbps"] == pytest.approx(
        row["per_piconet_kbps_mean"] * 4)


def test_crowded_room_coupled_goodput_decays_with_density():
    def row(piconets):
        return run_crowded_room_coupled_point(
            {"piconets": piconets, "duration_seconds": 2.0}, seed=5)[0]

    sparse, dense = row(2), row(6)
    assert dense["collision_probability"] > sparse["collision_probability"]
    assert dense["per_piconet_kbps_mean"] < sparse["per_piconet_kbps_mean"]
    assert dense["aggregate_kbps"] > sparse["aggregate_kbps"]
    with pytest.raises(ValueError):
        run_crowded_room_coupled_point({"piconets": 0}, seed=1)


def test_crowded_room_coupled_is_deterministic_per_seed():
    params = {"piconets": 2, "duration_seconds": 1.0}
    first = run_crowded_room_coupled_point(dict(params), seed=11)
    second = run_crowded_room_coupled_point(dict(params), seed=11)
    other_seed = run_crowded_room_coupled_point(dict(params), seed=12)
    assert first == second
    assert first != other_seed
