"""Golden-row regression tests.

Every registered experiment has its golden sweep (a small, deterministic
configuration — see :mod:`repro.experiments.golden`) pinned as a JSON
fixture under ``tests/golden/``.  A refactor that perturbs any aggregated
row fails here byte-for-byte; an *intentional* behaviour change refreshes
the fixtures with ``python -m repro.experiments regen-golden`` and commits
them alongside the change.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments.golden import (
    GOLDEN_OVERRIDES,
    compare,
    golden_dir,
    golden_json,
    golden_path,
    regenerate,
)
from repro.experiments.registry import experiment_names


def test_every_registered_experiment_has_a_fixture():
    missing = [name for name in experiment_names()
               if not golden_path(name).exists()]
    assert not missing, (
        f"run `python -m repro.experiments regen-golden` to create fixtures "
        f"for: {missing}")


def test_no_orphan_fixtures():
    orphans = [path.stem for path in golden_dir().glob("*.json")
               if path.stem not in experiment_names()]
    assert not orphans, f"fixtures without a registered experiment: {orphans}"


def test_simulation_experiments_have_shrunken_golden_configs():
    # every simulation experiment must pin a small golden configuration so
    # the fixture set stays fast enough for the default test tier
    for name, overrides in GOLDEN_OVERRIDES.items():
        if overrides:
            assert overrides.get("duration_seconds", 1.0) <= 2.0, name


@pytest.mark.parametrize("experiment", experiment_names())
def test_golden_rows_are_byte_identical(experiment):
    diff = compare(experiment)
    assert diff["actual"] == diff["expected"], (
        f"{experiment}: aggregated rows diverged from tests/golden/"
        f"{experiment}.json — if the change is intentional, refresh with "
        f"`python -m repro.experiments regen-golden {experiment}`")


@pytest.mark.parametrize("experiment", experiment_names())
def test_golden_rows_are_byte_identical_without_fast_path(experiment,
                                                          monkeypatch):
    # the slot-batch kernel must be invisible in the results: the same
    # fixtures hold byte-for-byte with the fast path disabled (the
    # REPRO_NO_FAST_PATH escape hatch the --no-fast-path CLI flag sets)
    monkeypatch.setenv("REPRO_NO_FAST_PATH", "1")
    diff = compare(experiment)
    assert diff["actual"] == diff["expected"], (
        f"{experiment}: the reference event loop diverged from the golden "
        f"fixture — the fast path and the event loop are no longer "
        f"byte-identical")


def test_fixtures_parse_as_json_with_rows():
    for path in sorted(golden_dir().glob("*.json")):
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["experiment"] == path.stem
        assert isinstance(payload["rows"], list) and payload["rows"]


def test_regenerate_writes_requested_subset(tmp_path):
    written = regenerate(["admission_capacity"], directory=tmp_path)
    assert [p.name for p in written] == ["admission_capacity.json"]
    assert written[0].read_text(encoding="utf-8") == \
        golden_json("admission_capacity")


def test_regen_golden_cli_refreshes_into_env_directory(tmp_path):
    result = subprocess.run(
        [sys.executable, "-m", "repro.experiments", "regen-golden",
         "admission_capacity"],
        capture_output=True, text=True,
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin",
             "REPRO_GOLDEN_DIR": str(tmp_path)},
        cwd=Path(__file__).resolve().parents[2])
    assert result.returncode == 0, result.stderr
    assert (tmp_path / "admission_capacity.json").exists()
