"""Per-task *start* progress reporting, including from worker processes."""

import logging
import threading

import pytest

from repro.experiments.orchestrator import (
    BatchingProcessBackend,
    EVENT_DONE,
    EVENT_START,
    ProcessPoolBackend,
    SerialBackend,
    SweepProgress,
    SweepRunner,
    log_progress,
    progress_logger,
)
from repro.experiments.registry import ExperimentSpec, register, unregister


def cheap_run_point(params, seed):
    return [{"x": params["x"], "value": params["x"] * 2.0}]


@pytest.fixture
def cheap_experiment():
    spec = register(ExperimentSpec(
        name="cheap-progress", description="synthetic progress probe",
        run_point=cheap_run_point, grid={"x": [1, 2, 3]}))
    yield spec
    unregister("cheap-progress")


class EventCollector:
    """Thread-safe progress sink (start events arrive from a thread)."""

    def __init__(self):
        self._lock = threading.Lock()
        self.events = []

    def __call__(self, progress: SweepProgress) -> None:
        with self._lock:
            self.events.append(progress)

    def keys(self, event):
        return sorted((p.point_index, p.replication)
                      for p in self.events if p.event == event)


def run_with(backend, experiment="admission_capacity"):
    collector = EventCollector()
    runner = SweepRunner(backend=backend, progress=collector)
    result = runner.run(experiment)
    return collector, result


def test_serial_backend_reports_start_before_done(cheap_experiment):
    collector, result = run_with(SerialBackend(), "cheap-progress")
    per_task = {}
    for progress in collector.events:
        key = (progress.point_index, progress.replication)
        per_task.setdefault(key, []).append(progress.event)
    assert per_task == {(i, 0): [EVENT_START, EVENT_DONE]
                        for i in range(3)}
    assert result.tasks_run == 3


def test_process_backend_reports_worker_side_starts():
    collector, result = run_with(ProcessPoolBackend(max_workers=2))
    total = result.tasks_total
    assert total > 1
    assert collector.keys(EVENT_START) == collector.keys(EVENT_DONE)
    assert len(collector.keys(EVENT_START)) == total


def test_batch_backend_reports_per_task_starts_within_chunks():
    backend = BatchingProcessBackend(max_workers=2, batch_size=2)
    collector, result = run_with(backend)
    # every task of every chunk announces its own start
    assert collector.keys(EVENT_START) == collector.keys(EVENT_DONE)
    assert len(collector.keys(EVENT_START)) == result.tasks_total


def test_adaptive_batch_backend_reports_starts():
    backend = BatchingProcessBackend(max_workers=2)
    collector, result = run_with(backend)
    assert collector.keys(EVENT_START) == collector.keys(EVENT_DONE)
    assert len(collector.keys(EVENT_START)) == result.tasks_total


def test_start_events_do_not_change_results(cheap_experiment):
    silent = SweepRunner(backend=SerialBackend()).run("cheap-progress")
    collector, observed = run_with(SerialBackend(), "cheap-progress")
    assert observed.to_json() == silent.to_json()


def test_no_start_machinery_without_progress_callback(cheap_experiment):
    backend = SerialBackend()
    SweepRunner(backend=backend).run("cheap-progress")
    assert backend.start_callback is None


def test_log_progress_renders_start_and_done_lines(caplog):
    start = SweepProgress(
        experiment="toy", completed=0, total=4, point_index=1,
        replication=0, params={}, elapsed_seconds=0.5, event=EVENT_START)
    done = SweepProgress(
        experiment="toy", completed=1, total=4, point_index=1,
        replication=0, params={}, elapsed_seconds=1.5, cached=True)
    with caplog.at_level(logging.INFO, logger=progress_logger.name):
        log_progress(start)
        log_progress(done)
    assert "task started (point 1, replication 0; 0/4 done)" \
        in caplog.messages[0]
    assert "task 1/4 done" in caplog.messages[1]
    assert "cached" in caplog.messages[1]
