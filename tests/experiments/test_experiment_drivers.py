"""Tests of the experiment drivers (short runs; results shaped like the paper)."""

import pytest

from repro.experiments import (
    compute_table1_parameters,
    format_admission_capacity,
    format_baseline_comparison,
    format_figure5,
    format_table1,
    run_admission_capacity,
    run_bandwidth_savings,
    run_baseline_comparison,
    run_delay_compliance,
    run_figure5,
    run_improvement_ablation,
    run_lossy_channel,
    run_sco_comparison,
)
from repro.experiments.figure5 import default_delay_requirements


def test_table1_matches_paper_constants():
    result = compute_table1_parameters()
    scenario = result["scenario"]
    assert scenario["eta_min_bytes"] == pytest.approx(144.0)
    assert scenario["token_rate_kBps"] == pytest.approx(8.8)
    assert scenario["mtu_bytes"] == 176
    assert scenario["max_transaction_ms"] == pytest.approx(3.75)
    flows = {f["flow_id"]: f for f in result["flows"]}
    assert len(flows) == 4
    # all flows export C = eta_min and D = u
    for f in flows.values():
        assert f["C_bytes"] == pytest.approx(144.0)
        assert f["D_ms"] == pytest.approx(f["u_ms"])
    # flows 2 and 3 are piggybacked and share priority / wait bound
    assert flows[2]["u_ms"] == pytest.approx(flows[3]["u_ms"])
    assert flows[2]["priority"] == flows[3]["priority"]
    # lower priority => larger wait bound
    assert flows[1]["u_ms"] < flows[2]["u_ms"] < flows[4]["u_ms"]
    assert "Table 1" in format_table1(result)


def test_default_delay_requirements_lie_in_feasible_range():
    requirements = default_delay_requirements(points=5)
    scenario = compute_table1_parameters()["scenario"]
    low = scenario["common_feasible_bound_min_ms"] / 1000.0
    high = scenario["common_feasible_bound_max_ms"] / 1000.0
    assert len(requirements) == 5
    assert all(low <= r <= high for r in requirements)
    assert requirements == sorted(requirements)


def test_default_delay_requirements_honors_points_argument():
    # regression: points=1 used to be ignored (any value < 2 returned one
    # point) and points=0/negative silently did the same
    for points in (1, 2, 3, 7):
        assert len(default_delay_requirements(points=points)) == points
    with pytest.raises(ValueError):
        default_delay_requirements(points=0)
    with pytest.raises(ValueError):
        default_delay_requirements(points=-3)


def test_figure5_shape_matches_paper():
    requirements = default_delay_requirements(points=2)
    rows = run_figure5(delay_requirements=requirements, duration_seconds=2.0)
    assert len(rows) == 2
    for row in rows:
        assert row["admitted"]
        # GS slaves keep their 64 / 128 / 64 kbit/s throughput
        assert row["S1"] == pytest.approx(64.0, abs=4.0)
        assert row["S2"] == pytest.approx(128.0, abs=6.0)
        assert row["S3"] == pytest.approx(64.0, abs=4.0)
        assert not row["gs_bound_violated"]
    tight, loose = rows[0], rows[-1]
    # a looser bound leaves more capacity for best effort
    be_tight = tight["S4"] + tight["S5"] + tight["S6"] + tight["S7"]
    be_loose = loose["S4"] + loose["S5"] + loose["S6"] + loose["S7"]
    assert be_loose >= be_tight - 1.0
    assert "Figure 5" in format_figure5(rows)


def test_delay_compliance_never_exceeds_bound():
    rows = run_delay_compliance(duration_seconds=2.0)
    assert rows
    assert all(row["bound_respected"] for row in rows)
    assert all(row["max_delay_s"] <= row["analytical_bound_s"] + 1e-9
               for row in rows)


def test_bandwidth_savings_variable_poller_uses_fewer_gs_slots():
    rows = run_bandwidth_savings(
        delay_requirements=default_delay_requirements(points=2),
        duration_seconds=2.0)
    assert rows
    for row in rows:
        assert row["variable"]["gs_slots"] < row["fixed"]["gs_slots"]
        assert row["slots_saved_fraction"] > 0
        # the delay guarantee still holds for the variable poller
        assert row["variable"]["gs_max_delay_s"] <= row["delay_requirement_s"] + 1e-9


def test_admission_capacity_piggybacking_never_worse():
    rows = run_admission_capacity()
    assert rows
    for row in rows:
        assert row["accepted_with_piggyback"] >= row["accepted_without_piggyback"]
    assert any(row["accepted_with_piggyback"] > row["accepted_without_piggyback"]
               for row in rows)
    assert "Table 4" in format_admission_capacity(rows)


def test_sco_comparison_pfp_leaves_more_slots_free():
    result = run_sco_comparison(duration_seconds=3.0)
    sco, pfp = result["rows"]
    assert sco["configuration"].startswith("SCO")
    assert pfp["slots_consumed_per_s"] < sco["slots_consumed_per_s"]
    assert pfp["slots_free_fraction"] > sco["slots_free_fraction"]
    # both deliver the full voice stream
    assert sco["throughput_kbps"] == pytest.approx(64.0, abs=5.0)
    assert pfp["throughput_kbps"] == pytest.approx(64.0, abs=5.0)


def test_baseline_comparison_pfp_meets_bound():
    rows = run_baseline_comparison(duration_seconds=1.5)
    by_name = {row["poller"]: row for row in rows}
    assert by_name["pfp (this paper)"]["bound_met"]
    assert len(rows) == 8
    assert "Ablation A" in format_baseline_comparison(rows)


def test_improvement_ablation_all_configurations_meet_bound():
    rows = run_improvement_ablation(duration_seconds=1.5)
    assert len(rows) == 5
    by_name = {row["configuration"]: row for row in rows}
    fixed = by_name["fixed interval"]
    full = by_name["variable: all improvements"]
    assert full["gs_slots"] < fixed["gs_slots"]
    assert all(row["bound_met"] for row in rows)


def test_lossy_channel_degrades_gracefully():
    rows = run_lossy_channel(bit_error_rates=[0.0, 1e-4],
                             duration_seconds=1.5)
    assert len(rows) == 2
    clean, lossy = rows
    assert clean["gs_retransmissions"] == 0
    assert lossy["gs_retransmissions"] > 0
    assert lossy["gs_retransmissions"] == (
        lossy["gs_segments_not_received"] + lossy["gs_crc_failures"])
    assert lossy["gs_throughput_kbps"] == pytest.approx(
        clean["gs_throughput_kbps"], rel=0.15)
