"""Smoke-run every script in ``examples/`` so the examples cannot rot.

Each example runs as a subprocess with a tiny simulated duration (every
demo accepts one on its command line), a temporary working directory (so
on-disk caches land in the sandbox) and the repository's ``src`` on
``PYTHONPATH``.  A new example script must be given an argument entry in
:data:`EXAMPLE_ARGS` — the completeness test fails otherwise, so examples
cannot silently drop out of this net either.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
EXAMPLES_DIR = REPO_ROOT / "examples"

#: per-script command-line arguments keeping every demo fast enough for
#: the default (non-slow) test tier
EXAMPLE_ARGS = {
    "admission_control_demo.py": ["0.3"],
    "distributed_sweep.py": ["--duration", "0.2", "--workers", "2"],
    "figure4_voice_piconet.py": ["40", "0.4"],
    "lossy_channel_demo.py": ["0.3"],
    "parallel_sweep.py": ["--duration", "0.2", "--workers", "2"],
    "poller_comparison.py": ["0.3"],
    "quickstart.py": ["--duration", "0.4"],
    "timeline_churn_demo.py": ["0.8"],
}


def example_scripts():
    return sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))


def test_every_example_has_smoke_arguments():
    missing = [name for name in example_scripts() if name not in EXAMPLE_ARGS]
    assert not missing, (
        f"examples without an EXAMPLE_ARGS entry (add tiny-duration "
        f"arguments so the smoke test covers them): {missing}")
    orphans = [name for name in EXAMPLE_ARGS if name not in example_scripts()]
    assert not orphans, f"EXAMPLE_ARGS entries without a script: {orphans}"


@pytest.mark.parametrize("script", example_scripts())
def test_example_runs_cleanly(script, tmp_path):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script), *EXAMPLE_ARGS[script]],
        capture_output=True, text=True, cwd=tmp_path, timeout=180,
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")})
    assert result.returncode == 0, (
        f"{script} exited {result.returncode}\nstdout:\n{result.stdout}\n"
        f"stderr:\n{result.stderr}")
    assert result.stdout.strip(), f"{script} printed nothing"
