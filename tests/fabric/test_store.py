"""Tests of the content-addressed result store and sweep manifests."""

import json
import os

import pytest

from repro.fabric.store import (
    CORRUPT_SUFFIX,
    ResultCache,
    ResultStore,
    SweepManifest,
    canonical_params,
    entry_digest,
)

ROWS = [{"value": 1.5, "label": "a"}, {"value": 2.5, "label": "b"}]


@pytest.fixture
def store(tmp_path):
    return ResultStore(str(tmp_path / "store"))


# ------------------------------------------------------------- addressing

def test_entry_digest_is_stable_and_param_order_free():
    forward = entry_digest("toy@v1", {"a": 1, "b": 2}, 7)
    backward = entry_digest("toy@v1", {"b": 2, "a": 1}, 7)
    assert forward == backward
    assert forward != entry_digest("toy@v1", {"a": 1, "b": 2}, 8)
    assert forward != entry_digest("toy@v2", {"a": 1, "b": 2}, 7)


def test_canonical_params_sorts_keys_compactly():
    assert canonical_params({"b": 2, "a": 1}) == '{"a":1,"b":2}'


def test_same_content_same_path_across_instances(tmp_path, store):
    first = store.put("toy@v1", {"x": 1}, 3, ROWS)
    twin = ResultStore(store.directory)
    assert twin.get("toy@v1", {"x": 1}, 3) == ROWS
    assert twin.put("toy@v1", {"x": 1}, 3, ROWS) == first


# -------------------------------------------------------------- get / put

def test_roundtrip_and_counters(store):
    assert store.get("toy@v1", {"x": 1}, 0) is None
    assert store.misses == 1
    store.put("toy@v1", {"x": 1}, 0, ROWS)
    assert store.get("toy@v1", {"x": 1}, 0) == ROWS
    assert store.hits == 1
    assert store.contains("toy@v1", {"x": 1}, 0)
    assert not store.contains("toy@v1", {"x": 2}, 0)


def test_put_is_atomic_no_tmp_left_behind(store):
    path = store.put("toy@v1", {"x": 1}, 0, ROWS)
    folder = os.path.dirname(path)
    assert not [name for name in os.listdir(folder)
                if name.endswith(".tmp")]


def test_corrupt_entry_is_quarantined_then_recomputed(store):
    path = store.put("toy@v1", {"x": 1}, 0, ROWS)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write('{"rows": [truncated')
    assert store.get("toy@v1", {"x": 1}, 0) is None
    assert store.quarantined == 1
    assert os.path.exists(path + CORRUPT_SUFFIX)
    assert not os.path.exists(path)
    # the slot is free again: a recompute re-populates it cleanly
    store.put("toy@v1", {"x": 1}, 0, ROWS)
    assert store.get("toy@v1", {"x": 1}, 0) == ROWS


def test_foreign_shape_is_a_miss_without_quarantine(store):
    path = store.put("toy@v1", {"x": 1}, 0, ROWS)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"some": "other format"}, handle)
    assert store.get("toy@v1", {"x": 1}, 0) is None
    assert store.quarantined == 0
    assert os.path.exists(path)  # left in place — it is valid JSON


def test_verify_roundtrip_probe_leaves_no_trace(store):
    assert store.verify_roundtrip() is True
    assert not os.path.exists(os.path.join(store.directory,
                                           "_doctor_probe@v0"))


# ------------------------------------------------------------- stats / gc

def _corrupt(store, experiment, params, seed):
    path = store.put(experiment, params, seed, ROWS)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("garbage")
    assert store.get(experiment, params, seed) is None  # quarantines
    return path + CORRUPT_SUFFIX


def test_stats_counts_entries_corrupt_and_orphans(store):
    store.put("toy@v1", {"x": 1}, 0, ROWS)
    store.put("toy@v1", {"x": 2}, 0, ROWS)
    store.put("other@v3", {"y": 1}, 1, ROWS)
    _corrupt(store, "toy@v1", {"x": 3}, 0)
    # an orphan: entry content that no longer matches its address
    orphan = os.path.join(store.directory, "toy@v1", "0" * 64 + ".json")
    with open(orphan, "w", encoding="utf-8") as handle:
        json.dump({"experiment": "toy@v1", "params": {"x": 9},
                   "seed": 0, "rows": ROWS}, handle)
    stats = store.stats()
    assert stats.entries == 4  # the orphan still parses as an entry
    assert stats.corrupt == 1
    assert stats.orphans == 1
    assert stats.experiments["toy@v1"]["entries"] == 3
    assert stats.experiments["other@v3"]["entries"] == 1
    assert stats.bytes > 0
    assert stats.to_dict()["corrupt"] == 1


def test_gc_removes_corrupt_tmp_orphans_and_stale_versions(store):
    keep = store.put("toy@v2", {"x": 1}, 0, ROWS)
    stale = store.put("toy@v1", {"x": 1}, 0, ROWS)
    unknown = store.put("mystery@v9", {"x": 1}, 0, ROWS)
    corrupt = _corrupt(store, "toy@v2", {"x": 2}, 0)
    leftover = os.path.join(store.directory, "toy@v2", "whatever.json.tmp")
    with open(leftover, "w", encoding="utf-8") as handle:
        handle.write("partial write")

    dry = store.gc(keep_versions={"toy": 2}, dry_run=True)
    assert sorted(dry) == sorted([stale, corrupt, leftover])
    assert os.path.exists(stale)  # dry run removed nothing

    removed = store.gc(keep_versions={"toy": 2})
    assert sorted(removed) == sorted(dry)
    assert os.path.exists(keep)
    assert os.path.exists(unknown)  # unknown experiments are left alone
    assert not os.path.exists(stale)
    assert not os.path.exists(os.path.dirname(stale))  # emptied dir pruned
    assert not os.path.exists(corrupt)
    assert not os.path.exists(leftover)


# -------------------------------------------------------------- manifests

def _manifest():
    digests = [entry_digest("toy@v1", {"x": value}, seed)
               for value in (1, 2) for seed in (10, 11)]
    return SweepManifest(experiment="toy@v1", master_seed=0, replications=2,
                         task_digests=digests)


def test_manifest_roundtrip_and_missing(store):
    manifest = _manifest()
    manifest.completed = manifest.task_digests[:2]
    path = store.save_manifest(manifest)
    assert os.path.exists(path)
    loaded = store.load_manifest(manifest.sweep_digest())
    assert loaded is not None
    assert loaded.task_digests == manifest.task_digests
    assert loaded.status == "running"
    assert loaded.requested == 4
    assert loaded.missing() == manifest.task_digests[2:]
    assert loaded.sweep_digest() == manifest.sweep_digest()


def test_manifest_digest_depends_on_task_identity():
    base, other = _manifest(), _manifest()
    other.master_seed = 1
    assert base.sweep_digest() != other.sweep_digest()
    reordered = _manifest()
    reordered.task_digests = list(reversed(reordered.task_digests))
    assert base.sweep_digest() != reordered.sweep_digest()
    # completion marks do NOT change the identity — resume must find it
    marked = _manifest()
    marked.completed = marked.task_digests[:1]
    assert base.sweep_digest() == marked.sweep_digest()


def test_load_manifest_missing_or_corrupt_is_none(store):
    assert store.load_manifest("0" * 64) is None
    manifest = _manifest()
    path = store.save_manifest(manifest)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("not json")
    assert store.load_manifest(manifest.sweep_digest()) is None


def test_result_cache_is_a_store_view(tmp_path):
    cache = ResultCache(str(tmp_path))
    assert isinstance(cache, ResultStore)
    cache.put("toy@v1", {"x": 1}, 0, ROWS)
    assert ResultStore(str(tmp_path)).get("toy@v1", {"x": 1}, 0) == ROWS
