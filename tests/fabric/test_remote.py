"""Failure-matrix tests of the fabric: coordinator, workers, RemoteBackend.

Workers here run as *threads* (``run_worker`` against a loopback
coordinator), so the toy experiment registered by the test process is
visible to them and the whole matrix — crash mid-chunk, silent worker,
worker-side exceptions, clean drain — runs in well under a second.  Real
subprocess workers (spawned ``python -m repro.fabric worker`` processes)
are covered by the slow tests in ``test_remote_subprocess.py``.
"""

import json
import threading

import pytest

from repro.experiments.orchestrator import (
    EVENT_DONE,
    EVENT_START,
    SweepRunner,
    make_backend,
    worker_identity,
)
from repro.experiments.registry import ExperimentSpec, register, unregister
from repro.fabric import protocol
from repro.fabric.backend import RemoteBackend
from repro.fabric.coordinator import Coordinator, FabricError
from repro.fabric.worker import run_worker


def fabric_run_point(params, seed):
    noise = (seed % 1000) / 1000.0
    return [{"x": params["x"], "label": f"x={params['x']}",
             "value": params["x"] * 10.0 + noise}]


def failing_run_point(params, seed):
    raise RuntimeError(f"boom at x={params['x']}")


@pytest.fixture
def fabric_experiment():
    spec = register(ExperimentSpec(
        name="fabric_toy", description="deterministic eight-point toy",
        run_point=fabric_run_point, grid={"x": list(range(8))},
        defaults={"duration_seconds": 0.0}))
    yield spec
    unregister("fabric_toy")


@pytest.fixture
def coordinator():
    coord = Coordinator(heartbeat_timeout=2.0, per_task_timeout=10.0,
                        backoff_base=0.01, worker_wait_timeout=5.0).start()
    yield coord
    coord.shutdown(drain_timeout=1.0)


def start_worker(coord, name, **kwargs):
    """Run a fabric worker in a thread; returns (thread, result holder)."""
    host, port = coord.address
    outcome = {}

    def serve():
        outcome["chunks"] = run_worker(host, port, name=name,
                                       heartbeat_interval=0.2, **kwargs)

    thread = threading.Thread(target=serve, name=f"test-worker-{name}",
                              daemon=True)
    thread.start()
    return thread, outcome


def rows_of(result):
    return json.loads(result.to_json())["rows"]


# -------------------------------------------------------- the happy path

def test_remote_rows_byte_identical_to_serial(fabric_experiment,
                                              coordinator):
    start_worker(coordinator, "w1")
    start_worker(coordinator, "w2")
    coordinator.wait_for_workers(2, timeout=5)
    backend = RemoteBackend(chunk_size=2, spawn_workers=0,
                            coordinator=coordinator)
    remote = SweepRunner(backend=backend).run("fabric_toy", replications=2,
                                              master_seed=3)
    serial = SweepRunner(max_workers=1).run("fabric_toy", replications=2,
                                            master_seed=3)
    assert rows_of(remote) == rows_of(serial)
    assert backend.last_stats["chunks_dispatched"] >= 4
    assert backend.last_stats["workers_lost"] == 0


def test_worker_registration_names_are_deduplicated(coordinator):
    start_worker(coordinator, "twin")
    coordinator.wait_for_workers(1, timeout=5)
    start_worker(coordinator, "twin")
    coordinator.wait_for_workers(2, timeout=5)
    names = set(coordinator.live_workers())
    assert len(names) == 2
    assert "twin" in names  # the second got a distinct suffixed name


# ------------------------------------------------------------- failures

def test_killed_worker_mid_chunk_is_stolen_and_rows_identical(
        fabric_experiment, coordinator):
    """A worker dying mid-chunk must not lose or duplicate any task."""
    start_worker(coordinator, "doomed", crash_after_chunks=1)
    start_worker(coordinator, "survivor")
    coordinator.wait_for_workers(2, timeout=5)
    backend = RemoteBackend(chunk_size=2, spawn_workers=0,
                            coordinator=coordinator)
    remote = SweepRunner(backend=backend).run("fabric_toy", master_seed=0)
    serial = SweepRunner(max_workers=1).run("fabric_toy", master_seed=0)
    assert rows_of(remote) == rows_of(serial)
    assert coordinator.stats["workers_lost"] >= 1
    assert coordinator.stats["chunks_stolen"] >= 1


def test_silent_worker_times_out_and_its_chunk_redispatches(
        fabric_experiment):
    """A registered worker that never heartbeats is reaped on timeout."""
    coord = Coordinator(heartbeat_timeout=0.4, per_task_timeout=10.0,
                        backoff_base=0.01, worker_wait_timeout=5.0).start()
    zombie = None
    try:
        zombie = protocol.connect(*coord.address)
        zombie.send({"type": protocol.REGISTER, "name": "zombie"})
        greeting = zombie.recv(timeout=5.0)
        assert greeting["type"] == protocol.REGISTERED
        # the zombie now ignores its chunks and sends nothing, ever
        start_worker(coord, "healthy")
        coord.wait_for_workers(2, timeout=5)
        backend = RemoteBackend(chunk_size=1, spawn_workers=0,
                                coordinator=coord)
        remote = SweepRunner(backend=backend).run("fabric_toy",
                                                  master_seed=1)
        serial = SweepRunner(max_workers=1).run("fabric_toy", master_seed=1)
        assert rows_of(remote) == rows_of(serial)
        assert coord.stats["workers_lost"] >= 1
        assert coord.stats["chunks_stolen"] >= 1
        assert "zombie" not in coord.live_workers()
    finally:
        if zombie is not None:
            zombie.abort()
        coord.shutdown(drain_timeout=1.0)


def test_worker_side_exception_exhausts_retries_with_the_traceback(
        coordinator):
    register(ExperimentSpec(
        name="fabric_fail", description="always raises",
        run_point=failing_run_point, grid={"x": [1, 2]},
        defaults={"duration_seconds": 0.0}))
    try:
        start_worker(coordinator, "w1")
        coordinator.wait_for_workers(1, timeout=5)
        coordinator.max_retries = 1
        backend = RemoteBackend(chunk_size=1, spawn_workers=0,
                                coordinator=coordinator)
        with pytest.raises(FabricError, match="boom at x="):
            SweepRunner(backend=backend).run("fabric_fail")
        assert coordinator.stats["chunks_retried"] >= 1
        # the worker survives its own task exceptions
        assert coordinator.live_workers() == ["w1"]
    finally:
        unregister("fabric_fail")


def test_no_workers_at_all_gives_up_after_the_wait_timeout(
        fabric_experiment):
    coord = Coordinator(worker_wait_timeout=0.3).start()
    try:
        backend = RemoteBackend(chunk_size=1, spawn_workers=0,
                                coordinator=coord)
        with pytest.raises(FabricError, match="no live workers"):
            SweepRunner(backend=backend).run("fabric_toy")
    finally:
        coord.shutdown(drain_timeout=0.5)


# ----------------------------------------------------------- clean drain

def test_shutdown_drains_workers_cleanly(fabric_experiment, coordinator):
    thread, outcome = start_worker(coordinator, "w1")
    coordinator.wait_for_workers(1, timeout=5)
    backend = RemoteBackend(chunk_size=2, spawn_workers=0,
                            coordinator=coordinator)
    SweepRunner(backend=backend).run("fabric_toy")
    coordinator.shutdown(drain_timeout=2.0)
    thread.join(timeout=5)
    assert not thread.is_alive()
    # run_worker returned its completed-chunk count: the clean-exit path
    assert outcome["chunks"] == 4  # 8 tasks / chunk_size 2


# ------------------------------------------------------ worker attribution

def test_serial_progress_events_carry_the_local_identity(fabric_experiment):
    events = []
    SweepRunner(max_workers=1, progress=events.append).run("fabric_toy")
    done = [e for e in events if e.event == EVENT_DONE]
    assert len(done) == 8
    assert {e.worker for e in done} == {worker_identity()}
    starts = [e for e in events if e.event == EVENT_START]
    assert {e.worker for e in starts} == {worker_identity()}


def test_remote_progress_events_name_the_executing_worker(
        fabric_experiment, coordinator):
    start_worker(coordinator, "w1")
    start_worker(coordinator, "w2")
    coordinator.wait_for_workers(2, timeout=5)
    events = []
    backend = RemoteBackend(chunk_size=1, spawn_workers=0,
                            coordinator=coordinator)
    SweepRunner(backend=backend, progress=events.append).run("fabric_toy")
    done = [e for e in events if e.event == EVENT_DONE]
    assert len(done) == 8
    assert {e.worker for e in done} <= {"w1", "w2"}
    assert all(e.worker for e in done)
    starts = [e for e in events if e.event == EVENT_START]
    assert starts and all(e.worker in {"w1", "w2"} for e in starts)


def test_log_progress_renders_the_worker(fabric_experiment, caplog):
    import logging

    from repro.experiments.orchestrator import log_progress

    events = []
    SweepRunner(max_workers=1, progress=events.append).run("fabric_toy")
    with caplog.at_level(logging.INFO, "repro.experiments.progress"):
        log_progress(events[-1])
    assert f" on {worker_identity()}" in caplog.text


# ------------------------------------------------------------ make_backend

def test_make_backend_resolves_remote_lazily():
    backend = make_backend("remote", 2)
    assert isinstance(backend, RemoteBackend)
    with pytest.raises(ValueError, match="remote"):
        make_backend("nonsense", 1)
