"""Tests of the length-prefixed JSON framing the fabric speaks."""

import socket
import struct
import threading

import pytest

from repro.fabric import protocol
from repro.fabric.protocol import (
    MAX_FRAME_BYTES,
    MessageSocket,
    ProtocolError,
    parse_address,
)


@pytest.fixture
def pair():
    left_raw, right_raw = socket.socketpair()
    left, right = MessageSocket(left_raw), MessageSocket(right_raw)
    yield left, right
    left.abort()
    right.abort()


def test_roundtrip_preserves_payloads(pair):
    left, right = pair
    message = {"type": protocol.CHUNK, "chunk_id": 3,
               "tasks": [["toy", {"x": 1.5, "nested": {"a": [1, 2]}}, 9]]}
    left.send(message)
    assert right.recv() == message


def test_messages_are_framed_not_merged(pair):
    left, right = pair
    for index in range(5):
        left.send({"index": index})
    assert [right.recv()["index"] for _ in range(5)] == [0, 1, 2, 3, 4]


def test_clean_close_reads_as_none(pair):
    left, right = pair
    left.send({"type": protocol.GOODBYE})
    left.close()
    assert right.recv() == {"type": protocol.GOODBYE}
    assert right.recv() is None


def test_eof_mid_frame_raises(pair):
    left, right = pair
    # a frame header promising more bytes than will ever arrive
    left._sock.sendall(struct.pack(">I", 100) + b'{"half":')
    left.abort()
    with pytest.raises(ProtocolError, match="mid-frame"):
        right.recv()


def test_oversized_incoming_frame_raises(pair):
    left, right = pair
    left._sock.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
    with pytest.raises(ProtocolError, match="claims"):
        right.recv()


def test_undecodable_and_non_object_frames_raise(pair):
    left, right = pair
    body = b"\xff\xfe not json"
    left._sock.sendall(struct.pack(">I", len(body)) + body)
    with pytest.raises(ProtocolError, match="undecodable"):
        right.recv()
    body = b"[1,2,3]"
    left._sock.sendall(struct.pack(">I", len(body)) + body)
    with pytest.raises(ProtocolError, match="not a JSON object"):
        right.recv()


def test_recv_timeout_propagates_and_socket_timeout_is_restored(pair):
    left, right = pair
    right._sock.settimeout(None)
    with pytest.raises(socket.timeout):
        right.recv(timeout=0.05)
    assert right._sock.gettimeout() is None
    left.send({"late": True})
    assert right.recv() == {"late": True}


def test_connect_dials_a_listener():
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    host, port = listener.getsockname()[:2]
    accepted = []

    def accept():
        raw, _ = listener.accept()
        accepted.append(MessageSocket(raw))

    thread = threading.Thread(target=accept)
    thread.start()
    client = protocol.connect(host, port)
    thread.join(timeout=5)
    try:
        client.send({"type": protocol.REGISTER, "name": "t"})
        assert accepted[0].recv() == {"type": protocol.REGISTER, "name": "t"}
    finally:
        client.close()
        accepted[0].close()
        listener.close()


def test_parse_address():
    assert parse_address("localhost:9000") == ("localhost", 9000)
    assert parse_address("::1:9000") == ("::1", 9000)
    with pytest.raises(ValueError, match="HOST:PORT"):
        parse_address("localhost")
    with pytest.raises(ValueError, match="invalid port"):
        parse_address("localhost:http")
