"""Tests of the automated sweep-analysis pass (rules + report + CLI)."""

import json
from pathlib import Path

import pytest

from repro.experiments.__main__ import main as experiments_main
from repro.fabric.analysis import (
    ANALYSIS_RULES,
    analysis_rule,
    analyze_payload,
    format_report,
)

GOLDEN = Path(__file__).resolve().parents[1] / "golden"


def payload_with(rows, replications=1):
    return {"experiment": "synthetic", "replications": replications,
            "rows": rows}


# ----------------------------------------------------------------- rules

def test_gs_bound_violation_is_critical():
    report = analyze_payload(payload_with([
        {"point": {"x": 1}, "mean": {"gs_bound_violated": False}},
        {"point": {"x": 2}, "mean": {"gs_bound_violated": True}},
        {"point": {"x": 3}, "mean": {"p1_gs_bound_violated": 0.25}},
    ]))
    violations = [f for f in report.findings
                  if f.rule == "gs_bound_violated"]
    assert [f.row_index for f in violations] == [1, 2]
    assert all(f.severity == "critical" for f in violations)
    assert "25%" in violations[1].message  # replication-split fraction


def test_compliance_cliff_between_adjacent_points():
    rows = [{"point": {"load": load},
             "mean": {"delay_compliance": value, "other": 1.0}}
            for load, value in [(1, 0.99), (2, 0.97), (3, 0.42)]]
    report = analyze_payload(payload_with(rows),
                             rules=["compliance_cliff"])
    (finding,) = report.findings
    assert finding.row_index == 2
    assert finding.metric == "delay_compliance"
    assert "0.97 -> 0.42" in finding.message


def test_starved_flow_against_busy_sibling():
    report = analyze_payload(payload_with([
        {"point": {"x": 1},
         "mean": {"gs_throughput_kbps": 120.0, "be_throughput_kbps": 0.0}},
        {"point": {"x": 2},
         "mean": {"gs_throughput_kbps": 120.0,
                  "be_throughput_kbps": 90.0}},
    ]), rules=["starved_flows"])
    (finding,) = report.findings
    assert finding.row_index == 0
    assert finding.metric == "be_throughput_kbps"


def test_explicit_starved_verdict_is_flagged():
    report = analyze_payload(payload_with([
        {"point": {"x": 1}, "mean": {"flows_starved": True}},
    ]), rules=["starved_flows"])
    assert [f.metric for f in report.findings] == ["flows_starved"]


def test_zero_goodput_is_critical_and_not_double_counted_as_starved():
    rows = [{"point": {"x": 1},
             "mean": {"gs_throughput_kbps": 0.0,
                      "be_throughput_kbps": 0.0}}]
    report = analyze_payload(payload_with(rows))
    assert [f.rule for f in report.findings] == ["zero_goodput"]
    assert report.findings[0].severity == "critical"
    assert report.critical == report.findings


def test_ci_blowup_needs_replications():
    rows = [{"point": {"x": 1}, "mean": {"value": 10.0},
             "ci": {"value": [2.0, 18.0]}}]
    assert not analyze_payload(payload_with(rows, replications=1),
                               rules=["ci_blowup"]).findings
    report = analyze_payload(payload_with(rows, replications=2),
                             rules=["ci_blowup"])
    (finding,) = report.findings
    assert finding.metric == "value"
    assert "80%" in finding.message


def test_clean_sweep_has_no_findings():
    rows = [{"point": {"x": 1},
             "mean": {"gs_throughput_kbps": 100.0,
                      "be_throughput_kbps": 80.0,
                      "delay_compliance": 0.99,
                      "gs_bound_violated": False}}]
    report = analyze_payload(payload_with(rows))
    assert not report.findings
    assert "no anomalies" in format_report(report)


def test_unknown_rule_name_raises():
    with pytest.raises(ValueError, match="unknown analysis rule"):
        analyze_payload(payload_with([]), rules=["no_such_rule"])


def test_new_rules_register_via_decorator():
    @analysis_rule("always_quiet")
    def _quiet(rows, replications):
        return []

    try:
        assert "always_quiet" in ANALYSIS_RULES
        report = analyze_payload(payload_with([{"point": {}, "mean": {}}]),
                                 rules=["always_quiet"])
        assert not report.findings
    finally:
        del ANALYSIS_RULES["always_quiet"]


# ------------------------------------------------- the acceptance fixture

def test_analyze_flags_the_churn_recovery_bound_violation():
    """The known violated row of churn_recovery must be flagged."""
    payload = json.loads((GOLDEN / "churn_recovery.json").read_text())
    report = analyze_payload(payload)
    rules = {f.rule for f in report.findings}
    assert "gs_bound_violated" in rules
    assert any(f.severity == "critical"
               and f.metric == "gs_bound_violated"
               for f in report.findings)


# -------------------------------------------------------------------- CLI

def test_cli_analyze_from_json(capsys):
    code = experiments_main([
        "analyze", "--from-json",
        str(GOLDEN / "churn_recovery.json")])
    out = capsys.readouterr().out
    assert code == 0
    assert "gs_bound_violated" in out
    assert "critical" in out


def test_cli_analyze_strict_exits_nonzero_on_critical(capsys):
    code = experiments_main([
        "analyze", "--strict", "--json", "--from-json",
        str(GOLDEN / "churn_recovery.json")])
    assert code == 2
    payload = json.loads(capsys.readouterr().out)
    assert payload["experiment"] == "churn_recovery"
    assert any(f["rule"] == "gs_bound_violated"
               for f in payload["findings"])


def test_cli_analyze_without_experiment_or_payload_errors():
    with pytest.raises(SystemExit, match="experiment name"):
        experiments_main(["analyze"])


def test_cli_analyze_runs_a_sweep(tmp_path, capsys):
    code = experiments_main([
        "analyze", "admission_capacity",
        "--cache-dir", str(tmp_path / "store")])
    assert code == 0
    out = capsys.readouterr().out
    assert "admission_capacity" in out
    assert "scanned" in out
