"""Tests of resumable sweeps: manifests + the store-backed ``--resume``."""

import os

import pytest

from repro.experiments.orchestrator import SweepRunner
from repro.experiments.registry import ExperimentSpec, register, unregister
from repro.fabric.store import ResultStore

CALLS = []


def counted_run_point(params, seed):
    CALLS.append((dict(params), seed))
    return [{"x": params["x"], "value": params["x"] * 10.0 + seed % 7}]


@pytest.fixture
def resumable_experiment():
    spec = register(ExperimentSpec(
        name="resume_toy", description="counts its executions",
        run_point=counted_run_point, grid={"x": [1, 2, 3]},
        defaults={"duration_seconds": 0.0}))
    CALLS.clear()
    yield spec
    unregister("resume_toy")


def test_resume_requires_the_store(resumable_experiment):
    with pytest.raises(ValueError, match="resume requires"):
        SweepRunner(max_workers=1).run("resume_toy", resume=True)


def test_cached_run_writes_a_complete_manifest(resumable_experiment,
                                               tmp_path):
    runner = SweepRunner(max_workers=1, cache_dir=str(tmp_path))
    result = runner.run("resume_toy", replications=2, master_seed=5)
    assert result.manifest_digest is not None
    assert result.resumed is False
    manifest = ResultStore(str(tmp_path)).load_manifest(
        result.manifest_digest)
    assert manifest is not None
    assert manifest.status == "complete"
    assert manifest.requested == 6
    assert sorted(manifest.completed) == sorted(manifest.task_digests)
    assert manifest.missing() == []
    assert manifest.backend == "serial"


def test_resume_reexecutes_only_the_missing_points(resumable_experiment,
                                                   tmp_path):
    runner = SweepRunner(max_workers=1, cache_dir=str(tmp_path))
    first = runner.run("resume_toy", replications=2, master_seed=5)
    assert first.tasks_run == 6

    # simulate an interrupted sweep: two task entries vanish from the
    # store and the manifest claims the sweep is still running
    store = ResultStore(str(tmp_path))
    manifest = store.load_manifest(first.manifest_digest)
    victims = manifest.task_digests[1:3]
    for digest in victims:
        os.remove(os.path.join(str(tmp_path), "resume_toy@v1",
                               digest + ".json"))
    manifest.status = "running"
    manifest.completed = [d for d in manifest.task_digests
                          if d not in victims]
    store.save_manifest(manifest)

    CALLS.clear()
    resumed = SweepRunner(max_workers=1, cache_dir=str(tmp_path)).run(
        "resume_toy", replications=2, master_seed=5, resume=True)
    # exactly the two missing points re-executed, nothing else
    assert len(CALLS) == 2
    assert resumed.tasks_run == 2
    assert resumed.cache_hits == 4
    assert resumed.resumed is True
    assert resumed.manifest_digest == first.manifest_digest
    refreshed = store.load_manifest(first.manifest_digest)
    assert refreshed.status == "complete"
    assert refreshed.missing() == []
    # and the aggregated rows match the uninterrupted run byte for byte
    assert resumed.to_json() == first.to_json()


def test_stale_completion_marks_are_reproved_by_the_store(
        resumable_experiment, tmp_path):
    """A manifest mark without a store entry must re-execute, not trust."""
    runner = SweepRunner(max_workers=1, cache_dir=str(tmp_path))
    first = runner.run("resume_toy", master_seed=2)
    store = ResultStore(str(tmp_path))
    manifest = store.load_manifest(first.manifest_digest)
    # every entry vanishes but the manifest still claims completion
    for digest in manifest.task_digests:
        os.remove(os.path.join(str(tmp_path), "resume_toy@v1",
                               digest + ".json"))
    store.save_manifest(manifest)

    CALLS.clear()
    resumed = SweepRunner(max_workers=1, cache_dir=str(tmp_path)).run(
        "resume_toy", master_seed=2, resume=True)
    assert len(CALLS) == 3
    assert resumed.cache_hits == 0
    assert resumed.to_json() == first.to_json()


def test_different_sweep_parameters_get_different_manifests(
        resumable_experiment, tmp_path):
    runner = SweepRunner(max_workers=1, cache_dir=str(tmp_path))
    base = runner.run("resume_toy", master_seed=0)
    other_seed = runner.run("resume_toy", master_seed=1)
    shrunk = runner.run("resume_toy", overrides={"x": [1, 2]},
                        master_seed=0)
    digests = {base.manifest_digest, other_seed.manifest_digest,
               shrunk.manifest_digest}
    assert len(digests) == 3


def test_corrupt_store_entry_is_recomputed_on_resume(resumable_experiment,
                                                     tmp_path):
    runner = SweepRunner(max_workers=1, cache_dir=str(tmp_path))
    first = runner.run("resume_toy", master_seed=9)
    store = ResultStore(str(tmp_path))
    manifest = store.load_manifest(first.manifest_digest)
    victim = os.path.join(str(tmp_path), "resume_toy@v1",
                          manifest.task_digests[0] + ".json")
    with open(victim, "w", encoding="utf-8") as handle:
        handle.write('{"rows": [truncat')

    CALLS.clear()
    resumed = SweepRunner(max_workers=1, cache_dir=str(tmp_path)).run(
        "resume_toy", master_seed=9, resume=True)
    assert len(CALLS) == 1  # quarantined entry recomputed, others reused
    assert os.path.exists(victim + ".corrupt")
    assert resumed.to_json() == first.to_json()
    assert os.path.exists(victim)  # the recompute re-populated the slot
