"""Slow fabric tests with *real* worker subprocesses.

The fast failure matrix in ``test_remote.py`` drives thread workers; here
the workers are genuine ``python -m repro.fabric worker`` processes — the
deployment shape — including one being killed (SIGKILL) mid-sweep.
"""

import json
import subprocess

import pytest

from repro.experiments.orchestrator import EVENT_START, SweepRunner
from repro.fabric.backend import (
    RemoteBackend,
    _worker_command,
    _worker_environment,
)
from repro.fabric.coordinator import Coordinator

pytestmark = pytest.mark.slow

#: a small real-simulation sweep: four lossy-channel points, each long
#: enough (~hundreds of ms of wall clock) that a worker killed on its
#: first task start is reliably mid-computation
SWEEP = dict(overrides={"bit_error_rate": [0.0, 3e-4, 1e-3, 3e-3],
                        "duration_seconds": 0.5},
             replications=1, master_seed=0)


def rows_of(result):
    return json.loads(result.to_json())["rows"]


def test_spawned_workers_match_serial_byte_for_byte():
    backend = RemoteBackend(max_workers=2, chunk_size=1)
    remote = SweepRunner(backend=backend).run("lossy_channel", **SWEEP)
    serial = SweepRunner(max_workers=1).run("lossy_channel", **SWEEP)
    assert rows_of(remote) == rows_of(serial)
    assert backend.last_stats["workers_joined"] == 2


def test_sigkilled_worker_process_does_not_perturb_the_rows():
    coordinator = Coordinator(heartbeat_timeout=2.0, per_task_timeout=30.0,
                              backoff_base=0.05).start()
    host, port = coordinator.address
    processes = {
        name: subprocess.Popen(_worker_command(host, port, name),
                               env=_worker_environment(),
                               stdout=subprocess.DEVNULL,
                               stderr=subprocess.DEVNULL)
        for name in ("victim", "helper")}
    killed = []

    def kill_victim_on_first_start(progress):
        if (progress.event == EVENT_START and progress.worker == "victim"
                and not killed):
            processes["victim"].kill()
            killed.append(progress.worker)

    try:
        coordinator.wait_for_workers(2, timeout=30)
        backend = RemoteBackend(chunk_size=1, spawn_workers=0,
                                coordinator=coordinator)
        remote = SweepRunner(backend=backend,
                             progress=kill_victim_on_first_start).run(
            "lossy_channel", **SWEEP)
        serial = SweepRunner(max_workers=1).run("lossy_channel", **SWEEP)
        assert rows_of(remote) == rows_of(serial)
        assert killed == ["victim"]
        assert processes["victim"].wait(timeout=10) != 0
        assert coordinator.stats["workers_lost"] >= 1
        assert coordinator.stats["chunks_stolen"] >= 1
    finally:
        coordinator.shutdown(drain_timeout=2.0)
        for process in processes.values():
            try:
                process.wait(timeout=5)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=5)
