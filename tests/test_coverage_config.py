"""Consistency checks of the coverage-floor wiring.

The floor itself is enforced by ``pytest --cov`` (with pytest-cov
installed) or ``tools/coverage_floor.py`` (stdlib fallback); these tests
keep the two invocations pointing at one agreed number and the fallback's
machinery importable — without re-running the whole suite under a tracer.
"""

import configparser
import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]


def load_tool():
    spec = importlib.util.spec_from_file_location(
        "coverage_floor", REPO_ROOT / "tools" / "coverage_floor.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_coveragerc_declares_a_sane_floor():
    parser = configparser.ConfigParser()
    assert parser.read(REPO_ROOT / ".coveragerc")
    floor = parser.getfloat("report", "fail_under")
    assert 50.0 <= floor < 100.0
    assert parser.get("run", "source") == "repro"


def test_floor_is_quoted_consistently_across_configs():
    parser = configparser.ConfigParser()
    parser.read(REPO_ROOT / ".coveragerc")
    floor = parser.get("report", "fail_under")
    assert f"--cov-fail-under={floor}" in \
        (REPO_ROOT / "pytest.ini").read_text(encoding="utf-8")
    assert f"--cov-fail-under={floor}" in \
        (REPO_ROOT / "setup.py").read_text(encoding="utf-8")


def test_setup_extras_include_pytest_cov():
    assert "pytest-cov" in (REPO_ROOT / "setup.py").read_text(
        encoding="utf-8")


def test_fallback_tool_reads_the_same_floor():
    tool = load_tool()
    parser = configparser.ConfigParser()
    parser.read(REPO_ROOT / ".coveragerc")
    assert tool.read_floor() == parser.getfloat("report", "fail_under")


def test_fallback_tool_finds_executable_lines():
    tool = load_tool()
    possible = tool.collect_possible_lines()
    # the whole package compiles, and the tracer targets real files
    assert len(possible) > 50
    assert all(path.endswith(".py") for path in possible)
    assert sum(len(lines) for lines in possible.values()) > 3000
    code = compile("x = 1\n\ndef f():\n    return 2\n", "<s>", "exec")
    lines = tool.executable_lines(code)
    assert {1, 3, 4} <= lines


def test_fallback_tracer_records_only_package_lines():
    tool = load_tool()
    tracer = tool.LineTracer()
    tracer.install()
    try:
        # executes lines both inside and outside src/repro
        from repro.sim.rng import derive_seed
        derive_seed(1, "probe")
    finally:
        tracer.uninstall()
    assert sys.gettrace() is None
    rng_path = str(REPO_ROOT / "src" / "repro" / "sim" / "rng.py")
    assert rng_path in tracer.executed
    assert all(path.startswith(str(REPO_ROOT / "src" / "repro"))
               for path in tracer.executed)
